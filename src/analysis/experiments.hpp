// Experiment drivers: one function per claim-reproduction experiment.
//
// Each driver runs `trials` independent simulations via
// engine/trials.hpp (per-trial RNG substreams -- results are independent
// of the worker-thread count), composes an Engine with the observers and
// stopping rule the experiment needs, reduces per-trial observables into
// OnlineMoments, and returns a small result struct the bench binaries
// format into tables.  DESIGN.md Sect. 4 maps experiments E1..E21 to
// these drivers; DESIGN.md Sect. 2 describes the engine layer they sit
// on.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/faults.hpp"
#include "core/mixed_config.hpp"
#include "core/token_process.hpp"
#include "engine/trials.hpp"
#include "graph/graph.hpp"
#include "support/stats.hpp"

namespace rbb {

// ---------------------------------------------------------------------------
// Round-kernel backend selection (shared by every backend-capable driver)
// ---------------------------------------------------------------------------

/// Which round kernel a driver runs (complete graph only for kSharded).
///
/// One enum for every driver: the policy-core refactor (DESIGN.md
/// Sect. 5) made "sharded" a property of the kernel instantiation, not
/// of any particular experiment, so the per-driver enums (the old
/// ConvergenceBackend) are gone.  The two kernels draw from different
/// generator families, so their trajectories (not their statistics)
/// differ.  Under kSharded the thread budget follows the driver's
/// TrialPlan (engine/trials.hpp): the legacy default gives the trial
/// fan-out all the cores and builds each process with threads = 1 (any
/// pool submission from inside a trial task is inline -- the
/// thread_pool.hpp nesting rule), while an explicit plan runs
/// trial_workers concurrent trials each sharding its rounds across
/// process_threads of a private pool (the trials hold a
/// NestedParallelismGrant).  Per-round thread scaling of a single
/// instance belongs to the sharded_scaling experiment.
enum class Backend {
  kSeq,      // core/ sequential kernels, xoshiro draws
  kSharded,  // src/par/ instantiations, counter-RNG draws
};

// ---------------------------------------------------------------------------
// E1 / E7 / E13 / E14 / E15 -- stability windows
// ---------------------------------------------------------------------------

/// Which process the stability driver runs.
enum class StabilityProcess {
  kRepeated,        // the paper's process (E1, E13, E14)
  kTetris,          // the auxiliary process (E7)
  kRepeatedDChoice, // the [36] extension (E15); set `choices`
  kIndependent,     // unconstrained parallel walks (E12 comparator)
  kThreshold,       // 1-2-3-Toolkit threshold allocation; set
                    // `threshold` and `choices` (= probe count)
};

struct StabilityParams {
  std::uint32_t n = 0;
  std::uint64_t balls = 0;      // 0 = n
  std::uint64_t rounds = 0;     // observation window (after round 1)
  std::uint32_t trials = 0;
  std::uint64_t seed = 1;
  InitialConfig start = InitialConfig::kOnePerBin;
  double beta = 4.0;            // legitimacy constant
  const Graph* graph = nullptr; // nullptr = complete graph
  StabilityProcess process = StabilityProcess::kRepeated;
  std::uint32_t choices = 2;    // d for kRepeatedDChoice; probes for
                                // kThreshold
  std::uint32_t threshold = 0;  // kThreshold accept bound; 0 = auto
                                // (ceil(m/n) + 1)
  ThreadPool* pool = nullptr;   // nullptr = the process-wide pool
  /// kSharded is supported for kRepeated, kRepeatedDChoice and
  /// kThreshold (the clique-only kernels with src/par/
  /// instantiations); other processes reject it.
  Backend backend = Backend::kSeq;
  std::uint32_t shard_size = 0;  // 0 = kernel::kDefaultShardSize
  /// Trial/round thread split (default: legacy shared-pool fan-out);
  /// process_threads reaches the sharded kernels' ExecOptions, so it
  /// only matters under Backend::kSharded.
  TrialPlan plan = {};
};

struct StabilityResult {
  OnlineMoments window_max;        // per-trial max_t M(t), t in [1, rounds]
  OnlineMoments final_max;         // per-trial M(rounds)
  OnlineMoments min_empty_fraction;// per-trial min_t empty(t)/n, t >= 1
  double legit_window_fraction = 0; // trials with window max <= beta log2 n
  std::uint32_t overall_max = 0;   // max over trials of window max
  /// Raw per-trial window maxima (indexed by trial), for ablations that
  /// re-evaluate legitimacy under several beta values without re-running.
  std::vector<double> per_trial_window_max;
};

[[nodiscard]] StabilityResult run_stability(const StabilityParams& params);

// ---------------------------------------------------------------------------
// E2 -- convergence time from arbitrary configurations (Theorem 1, part 2)
// ---------------------------------------------------------------------------

struct ConvergenceParams {
  std::uint32_t n = 0;
  std::uint64_t balls = 0;  // 0 = n (m = c * n regimes set this)
  std::uint32_t trials = 0;
  std::uint64_t seed = 1;
  InitialConfig start = InitialConfig::kAllInOne;
  double beta = 4.0;
  std::uint64_t cap = 0;  // 0 = 64 n
  Backend backend = Backend::kSeq;  // see the Backend doc comment
  std::uint32_t shard_size = 0;     // 0 = kernel::kDefaultShardSize
  TrialPlan plan = {};              // see StabilityParams::plan
};

struct ConvergenceResult {
  OnlineMoments rounds_to_legitimate;  // per-trial convergence round
  OnlineMoments normalized;            // convergence round / n
  std::uint32_t timeouts = 0;          // trials that hit the cap
};

[[nodiscard]] ConvergenceResult run_convergence(const ConvergenceParams& p);

// ---------------------------------------------------------------------------
// E3 -- the empty-bins invariant (Lemmas 1-2)
// ---------------------------------------------------------------------------

struct EmptyBinsParams {
  std::uint32_t n = 0;
  std::uint64_t balls = 0;  // 0 = n (m = c * n regimes set this)
  std::uint64_t rounds = 0;
  std::uint32_t trials = 0;
  std::uint64_t seed = 1;
  InitialConfig start = InitialConfig::kOnePerBin;
  Backend backend = Backend::kSeq;
};

struct EmptyBinsResult {
  OnlineMoments min_fraction;   // per-trial min_{t>=1} empty(t)/n
  OnlineMoments mean_fraction;  // per-trial mean_{t>=1} empty(t)/n
  std::uint32_t below_quarter = 0;  // trials whose min dipped below 1/4
};

[[nodiscard]] EmptyBinsResult run_empty_bins(const EmptyBinsParams& p);

// ---------------------------------------------------------------------------
// Mixed-regime engine (DESIGN.md Sect. 5): m = c n, weighted balls,
// heterogeneous bins
// ---------------------------------------------------------------------------

struct MixedParams {
  std::uint32_t n = 0;
  double ball_ratio = 1.0;            // m = round(ratio * n), min 1
  std::string weights = "unit";       // core/mixed_config.hpp profile
  std::string bin_profile = "uniform";
  std::uint64_t rounds = 0;           // 0 = 4 n
  std::uint32_t trials = 0;
  std::uint64_t seed = 1;
  Backend backend = Backend::kSeq;    // see the Backend doc comment
  std::uint32_t shard_size = 0;       // 0 = kernel::kDefaultShardSize
};

struct MixedResult {
  OnlineMoments window_max;           // per-trial max_t M(t)
  OnlineMoments final_max;            // per-trial M(rounds)
  OnlineMoments window_max_weighted;  // per-trial max_t weighted M(t)
  OnlineMoments mean_empty_fraction;  // per-trial mean_t empty(t)/n
  OnlineMoments max_utilization;      // per-trial max_t load/cap (capped)
  OnlineMoments dropped_fraction;     // per-trial drops / initial balls
};

[[nodiscard]] MixedResult run_mixed(const MixedParams& p);

// ---------------------------------------------------------------------------
// E4 -- coupling & domination (Lemma 3)
// ---------------------------------------------------------------------------

struct CouplingParams {
  std::uint32_t n = 0;
  std::uint64_t rounds = 0;
  std::uint32_t trials = 0;
  std::uint64_t seed = 1;
  InitialConfig start = InitialConfig::kRandom;
};

struct CouplingResult {
  OnlineMoments original_window_max;  // M_T per trial
  OnlineMoments tetris_window_max;    // M-hat_T per trial
  std::uint64_t total_case_two_rounds = 0;
  std::uint64_t total_violation_rounds = 0;
  std::uint32_t trials_with_violation = 0;
  std::uint32_t trials_dominated_throughout = 0;
};

[[nodiscard]] CouplingResult run_coupling(const CouplingParams& p);

// ---------------------------------------------------------------------------
// E5 -- Tetris drain time (Lemma 4)
// ---------------------------------------------------------------------------

struct TetrisDrainParams {
  std::uint32_t n = 0;
  std::uint32_t trials = 0;
  std::uint64_t seed = 1;
  InitialConfig start = InitialConfig::kAllInOne;
  std::uint64_t cap = 0;  // 0 = 64 n
};

struct TetrisDrainResult {
  OnlineMoments max_first_empty;  // per-trial max_u first-empty round
  OnlineMoments normalized;       // the same, divided by n
  std::uint32_t exceeded_5n = 0;  // trials where the max exceeded 5n
  std::uint32_t timeouts = 0;
};

[[nodiscard]] TetrisDrainResult run_tetris_drain(const TetrisDrainParams& p);

// ---------------------------------------------------------------------------
// E6 -- Z-chain absorption tail (Lemma 5)
// ---------------------------------------------------------------------------

struct ZChainTailParams {
  std::uint32_t n = 0;
  std::uint64_t start = 0;          // initial state k
  std::vector<std::uint64_t> ts;    // tail evaluation points
  std::uint32_t trials = 0;
  std::uint64_t seed = 1;
};

struct ZChainTailResult {
  OnlineMoments absorption_time;      // per-trial tau
  std::vector<double> empirical_tail; // P(tau > t) for each requested t
  std::uint32_t timeouts = 0;         // trials not absorbed within max(ts)
};

[[nodiscard]] ZChainTailResult run_zchain_tail(const ZChainTailParams& p);

// ---------------------------------------------------------------------------
// E8 / E9 -- cover times (Corollary 1, Sect. 4.1)
// ---------------------------------------------------------------------------

struct CoverTimeParams {
  std::uint32_t n = 0;
  std::uint32_t trials = 0;
  std::uint64_t seed = 1;
  QueuePolicy policy = QueuePolicy::kFifo;
  const Graph* graph = nullptr;
  InitialConfig placement = InitialConfig::kOnePerBin;
  std::uint64_t fault_period = 0;   // 0 = no faults (E8); else E9
  FaultStrategy fault_strategy = FaultStrategy::kAllToOne;
  std::uint64_t max_rounds = 0;     // 0 = 64 n log2(n)^2
  /// kSharded drives the visit-tracking token core (any queue policy,
  /// clique, no faults); rejected when graph/faults need the
  /// sequential TokenProcess.
  Backend backend = Backend::kSeq;
};

struct CoverTimeResult {
  OnlineMoments cover_time;          // per-trial global cover time
  OnlineMoments normalized;          // cover time / (n log2(n)^2)
  OnlineMoments first_token;         // earliest token cover round
  OnlineMoments max_load_seen;
  OnlineMoments single_walk;         // single-token baseline cover time
  std::uint32_t timeouts = 0;
};

[[nodiscard]] CoverTimeResult run_cover_time(const CoverTimeParams& p);

// ---------------------------------------------------------------------------
// E10 -- negative-association counterexample (Appendix B)
// ---------------------------------------------------------------------------

struct NegAssocResult {
  double p_x1_zero = 0;        // estimate of P(X1 = 0); exact 1/4
  double p_x2_zero = 0;        // estimate of P(X2 = 0); exact 3/8
  double p_both_zero = 0;      // estimate of P(X1 = 0, X2 = 0); exact 1/8
  std::uint64_t trials = 0;
};

/// Monte-Carlo estimate of the Appendix-B probabilities for n = 2 started
/// from one ball per bin; X_t = number of balls arriving at bin 0 in
/// round t.
[[nodiscard]] NegAssocResult run_negative_association(std::uint64_t trials,
                                                      std::uint64_t seed);

// ---------------------------------------------------------------------------
// E11 -- running max vs the O(sqrt(t)) bound of [12]
// ---------------------------------------------------------------------------

struct SqrtTParams {
  std::uint32_t n = 0;
  std::vector<std::uint64_t> checkpoints;  // increasing round indices
  std::uint32_t trials = 0;
  std::uint64_t seed = 1;
  InitialConfig start = InitialConfig::kOnePerBin;
};

struct SqrtTResult {
  /// mean over trials of max_{s<=t} M(s) at each checkpoint.
  std::vector<double> running_max_mean;
  /// max over trials at each checkpoint.
  std::vector<std::uint32_t> running_max_worst;
};

[[nodiscard]] SqrtTResult run_sqrt_t(const SqrtTParams& p);

// ---------------------------------------------------------------------------
// E12 -- one-shot baseline max loads
// ---------------------------------------------------------------------------

struct OneShotParams {
  std::uint32_t n = 0;
  std::uint64_t balls = 0;   // 0 = n
  std::uint32_t trials = 0;
  std::uint64_t seed = 1;
  std::uint32_t d = 1;       // 1 = plain one-shot; >= 2 = Greedy[d]
  bool always_go_left = false;
};

struct OneShotResult {
  OnlineMoments max_load;
};

[[nodiscard]] OneShotResult run_oneshot(const OneShotParams& p);

// ---------------------------------------------------------------------------
// E16 -- leaky bins (lambda sweep)
// ---------------------------------------------------------------------------

struct LeakyParams {
  std::uint32_t n = 0;
  double lambda = 0.75;
  std::uint64_t burn_in = 0;   // rounds discarded before measuring
  std::uint64_t rounds = 0;    // measured window
  std::uint32_t trials = 0;
  std::uint64_t seed = 1;
  Backend backend = Backend::kSeq;
};

struct LeakyResult {
  OnlineMoments window_max;         // per-trial max load in the window
  OnlineMoments mean_total_per_bin; // per-trial mean of total balls / n
  OnlineMoments mean_empty_fraction;
};

[[nodiscard]] LeakyResult run_leaky(const LeakyParams& p);

// ---------------------------------------------------------------------------
// E17 -- closed Jackson network
// ---------------------------------------------------------------------------

struct JacksonParams {
  std::uint32_t n = 0;
  std::uint64_t customers = 0;  // 0 = n
  double horizon = 0;           // time units; 0 = 20 n
  std::uint32_t trials = 0;
  std::uint64_t seed = 1;
};

struct JacksonResult {
  OnlineMoments running_max;  // per-trial max queue length over the run
  OnlineMoments final_max;    // per-trial max queue length at the horizon
  OnlineMoments events_per_unit_time;
};

[[nodiscard]] JacksonResult run_jackson(const JacksonParams& p);

// ---------------------------------------------------------------------------
// E18 -- FIFO token progress (Sect. 4 guarantee)
// ---------------------------------------------------------------------------

struct ProgressParams {
  std::uint32_t n = 0;
  std::uint64_t rounds = 0;   // 0 = 8 n
  std::uint32_t trials = 0;
  std::uint64_t seed = 1;
  QueuePolicy policy = QueuePolicy::kFifo;
  /// kSharded drives the src/par/ token core (FIFO only).
  Backend backend = Backend::kSeq;
};

struct ProgressResult {
  OnlineMoments min_progress;            // per-trial min_i progress_i(T)
  OnlineMoments min_progress_normalized; // min progress * log2(n) / T
  OnlineMoments mean_progress;           // per-trial mean progress / T
};

[[nodiscard]] ProgressResult run_progress(const ProgressParams& p);

// ---------------------------------------------------------------------------
// E19 -- token waiting times (Sect. 1.1: delay <= O(log n) w.h.p.)
// ---------------------------------------------------------------------------

struct DelayParams {
  std::uint32_t n = 0;
  std::uint64_t rounds = 0;  // 0 = 16 n
  std::uint32_t trials = 0;
  std::uint64_t seed = 1;
  QueuePolicy policy = QueuePolicy::kFifo;
};

struct DelayResult {
  Histogram delays;          // pooled over trials (one entry per release)
  OnlineMoments max_delay;   // per-trial maximum delay
  double mean_delay = 0;     // pooled mean
  std::uint64_t p50 = 0, p99 = 0, p999 = 0;  // pooled quantiles
};

[[nodiscard]] DelayResult run_delays(const DelayParams& p);

// ---------------------------------------------------------------------------
// E20 -- stationary load profile (occupancy distribution)
// ---------------------------------------------------------------------------

/// Which process's stationary profile to sample.
enum class ProfileProcess { kRepeated, kIndependent, kTetris, kJackson };

struct LoadProfileParams {
  std::uint32_t n = 0;
  ProfileProcess process = ProfileProcess::kRepeated;
  std::uint64_t burn_in = 0;   // rounds before sampling (0 = 4 n)
  std::uint32_t samples = 0;   // configuration snapshots (0 = 50)
  std::uint64_t sample_gap = 0;// rounds between snapshots (0 = n/4)
  std::uint32_t trials = 0;
  std::uint64_t seed = 1;
};

struct LoadProfileResult {
  /// Pooled occupancy histogram: total count of (bin, snapshot) pairs at
  /// each load value.
  Histogram profile;
  /// tail_fraction(k) convenience copy: fraction of bins with load >= k.
  std::vector<double> tail;  // index k, up to the max observed load
};

[[nodiscard]] LoadProfileResult run_load_profile(const LoadProfileParams& p);

// ---------------------------------------------------------------------------
// E21 -- tagged-token mixing (parallel-walk uniformity, cf. [13])
// ---------------------------------------------------------------------------

struct MixingParams {
  std::uint32_t n = 0;
  std::vector<std::uint64_t> checkpoints;  // increasing round indices
  std::uint32_t trials = 0;                // position samples per point
  std::uint64_t seed = 1;
  QueuePolicy policy = QueuePolicy::kFifo;
  /// Initial placement.  The tracked token is the *worst-positioned* one
  /// for the policy (the back of the queue under FIFO/random, the front
  /// under LIFO), so the measurement captures the delay-induced freezing
  /// the queueing correlation causes -- a front-of-queue token would mix
  /// in a single round and show nothing.
  InitialConfig placement = InitialConfig::kRandom;
};

struct MixingResult {
  /// TV distance of token 0's empirical position distribution from
  /// uniform, at each checkpoint.
  std::vector<double> tv_from_uniform;
  /// Sampling-noise floor: the TV a perfectly uniform sampler of the same
  /// trial count would show (estimated with fresh uniform draws).
  double noise_floor = 0;
};

[[nodiscard]] MixingResult run_mixing(const MixingParams& p);

}  // namespace rbb
