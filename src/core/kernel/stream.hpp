// RNG stream policies of the process core (DESIGN.md Sect. 5).
//
// The second policy axis: where a round's randomness comes from.
//
//   * SequentialStream -- the production xoshiro256++ generator
//     (support/rng.hpp).  Draws are a serial stream: the t-th draw
//     requires the t-1 before it, which pins the consumer to one
//     thread but makes each draw ~6x cheaper than a Philox block.
//     kScheduleFree = false: the sharded execution policy rejects it
//     at compile time.
//   * CounterStream -- the counter-based Philox4x32-10 generator
//     (support/counter_rng.hpp).  Every draw is a pure function of
//     (seed, round, slot), so any worker can compute any draw in any
//     order and a round's randomness is fully determined before any
//     phase starts -- the property the sharded scatter needs for
//     thread-count- and shard-size-invariant trajectories.  Hot paths
//     consume draws through the batched/SIMD draw planes
//     (support/draw_plane.hpp) via fill_range / fill_gather, which are
//     bit-identical to per-call index() by construction.
//
// Slot-space convention (shared by every variant so streams never
// collide):
//   slot = u                      relaunch destination of releasing bin u
//   slot = j * 2^32 + u           candidate j of releasing bin u
//                                 (repeated d-choices; j < 2^16)
//   slot = 2^48 + i               fresh arrival i of the round (Tetris /
//                                 leaky bins; i < 2^32)
//   slot = 2^49 + u               queue-position draw of releasing bin u
//                                 (random queue policy of the token core)
//   slot = 2^50 + j * 2^32 + u    weight-CLASS draw of departure j of
//                                 releasing bin u (mixed-regime core;
//                                 j < rate_u < 2^16)
//   slot = 2^51 + j * 2^32 + u    DESTINATION draw of departure j of
//                                 releasing bin u (mixed-regime core)
//   tag  = 2^56                   the round's arrival-count substream
//                                 (leaky bins' Binomial(n, lambda) draw)
#pragma once

#include <cstddef>
#include <cstdint>

#include "support/counter_rng.hpp"
#include "support/draw_plane.hpp"
#include "support/rng.hpp"

namespace rbb::kernel {

/// Slot of the destination draw for the ball released by bin u.
[[nodiscard]] constexpr std::uint64_t relaunch_slot(
    std::uint32_t u) noexcept {
  return u;
}

/// Slot of candidate j for the ball released by bin u (d-choices).
[[nodiscard]] constexpr std::uint64_t candidate_slot(std::uint32_t j,
                                                     std::uint32_t u) noexcept {
  return (static_cast<std::uint64_t>(j) << 32) | u;
}

/// Slot of the i-th fresh arrival of a round (Tetris / leaky bins).
inline constexpr std::uint64_t kFreshArrivalBase = std::uint64_t{1} << 48;
[[nodiscard]] constexpr std::uint64_t fresh_arrival_slot(
    std::uint64_t i) noexcept {
  return kFreshArrivalBase + i;
}

/// Slot of the queue-position draw of releasing bin u under the random
/// queue policy: which of the bin's `count` tokens departs this round.
/// One draw per (round, releasing bin), so it is schedule-free; the
/// base clears the fresh-arrival range (2^48 + i, i < 2^32).
inline constexpr std::uint64_t kPopSelectBase = std::uint64_t{1} << 49;
[[nodiscard]] constexpr std::uint64_t pop_select_slot(
    std::uint32_t u) noexcept {
  return kPopSelectBase + u;
}

/// Base of the weight-class draws of the mixed-regime core: departure
/// j of releasing bin u picks WHICH ball leaves (a class index,
/// proportional to the bin's per-class counts) on slot
/// 2^50 | (j << 32) | u.  One slot per (round, bin, departure index),
/// so the draw is schedule-free; heterogeneous service rates bound
/// j < rate_u, and the core validates rate_u < 2^16 so the j field
/// never carries into the base bits.
inline constexpr std::uint64_t kMixedClassBase = std::uint64_t{1} << 50;
[[nodiscard]] constexpr std::uint64_t mixed_class_slot(
    std::uint32_t j, std::uint32_t u) noexcept {
  return kMixedClassBase | (static_cast<std::uint64_t>(j) << 32) | u;
}

/// Base of the destination draws of the mixed-regime core: departure j
/// of releasing bin u throws to index(round, 2^51 | (j << 32) | u, n).
/// Separate from the class base so the two draws of one departure
/// never alias.
inline constexpr std::uint64_t kMixedDestBase = std::uint64_t{1} << 51;
[[nodiscard]] constexpr std::uint64_t mixed_dest_slot(
    std::uint32_t j, std::uint32_t u) noexcept {
  return kMixedDestBase | (static_cast<std::uint64_t>(j) << 32) | u;
}

/// Tag of the per-round arrival-count substream (leaky bins).
inline constexpr std::uint64_t kArrivalCountTag = std::uint64_t{1} << 56;

// The slot bases partition the 64-bit slot space; a new range must
// clear every existing one.  (candidate_slot spans [0, 2^48) with
// j < 2^16.)
static_assert(kFreshArrivalBase >= (std::uint64_t{1} << 48),
              "fresh arrivals must clear the candidate range");
static_assert(kPopSelectBase >= kFreshArrivalBase + (std::uint64_t{1} << 32),
              "pop-select must clear the fresh-arrival range");
static_assert(kMixedClassBase >= kPopSelectBase + (std::uint64_t{1} << 32),
              "mixed class draws must clear the pop-select range");
static_assert(kMixedDestBase >= kMixedClassBase + (std::uint64_t{1} << 48),
              "mixed destination draws must clear the class range "
              "(j < 2^16, u < 2^32)");
static_assert(kArrivalCountTag >= kMixedDestBase + (std::uint64_t{1} << 48),
              "the arrival-count tag must clear the mixed destination "
              "range");

/// Draws buffered per stack chunk when a kernel phase interleaves
/// plane fills with scatter/apply work (sharded stripes, refill
/// arrivals): big enough to amortize the batch setup, small enough
/// that the chunk buffers live in L1.
inline constexpr std::uint32_t kDrawChunk = 256;

/// Sequential xoshiro256++ stream (the production single-thread draws).
class SequentialStream {
 public:
  static constexpr bool kScheduleFree = false;

  explicit SequentialStream(Rng rng) noexcept : rng_(rng) {}

  [[nodiscard]] Rng& rng() noexcept { return rng_; }

 private:
  Rng rng_;
};

/// Counter-based Philox stream: draw = f(seed, round, slot), no state.
class CounterStream {
 public:
  static constexpr bool kScheduleFree = true;

  constexpr explicit CounterStream(std::uint64_t seed) noexcept
      : rng_(seed), plane_(rng_) {}
  constexpr CounterStream(std::uint64_t seed, std::uint64_t stream) noexcept
      : rng_(seed, stream), plane_(rng_) {}

  /// Uniform index in [0, n) for draw (round, slot).
  [[nodiscard]] std::uint32_t index(std::uint64_t round, std::uint64_t slot,
                                    std::uint32_t n) const noexcept {
    return rng_.index(round, slot, n);
  }

  /// Batched draws for the contiguous slot range
  /// [slot_begin, slot_begin + count): out[i] = index(round,
  /// slot_begin + i, n), bit for bit, via the SIMD/batched draw plane
  /// (support/draw_plane.hpp).  Fresh-arrival draws use this.
  void fill_range(std::uint64_t round, std::uint64_t slot_begin,
                  std::size_t count, std::uint32_t n,
                  std::uint32_t* out) const noexcept {
    plane_.fill_range(round, slot_begin, count, n, out);
  }

  /// Batched draws for a gathered slot list sharing the upper slot
  /// half: out[i] = index(round, (slot_hi << 32) | slot_lo[i], n).
  /// Relaunch destinations gather the releasing bins with slot_hi = 0;
  /// d-choices candidate j gathers them with slot_hi = j.
  void fill_gather(std::uint64_t round, const std::uint32_t* slot_lo,
                   std::uint32_t slot_hi, std::size_t count, std::uint32_t n,
                   std::uint32_t* out) const noexcept {
    plane_.fill_gather(round, slot_lo, slot_hi, count, n, out);
  }

  /// A sequential substream derived for (round, tag): used for the few
  /// per-round draws that are counts rather than destinations (e.g. the
  /// leaky-bins Binomial(n, lambda) arrival draw).  Schedule-free
  /// because the core draws it exactly once per round, before any phase
  /// is dispatched.
  [[nodiscard]] Rng round_rng(std::uint64_t round,
                              std::uint64_t tag) const noexcept {
    const std::array<std::uint64_t, 2> w = rng_.words(round, tag);
    return Rng(w[0], w[1]);
  }

  [[nodiscard]] const CounterRng& counter() const noexcept { return rng_; }
  [[nodiscard]] const DrawPlane& plane() const noexcept { return plane_; }

 private:
  CounterRng rng_;
  DrawPlane plane_;
};

}  // namespace rbb::kernel
