// Back-compat entry point for the bench/exp_* binaries.
//
// Every former hand-rolled bench main is now a one-line shim over the
// experiment registry: `exp_stability --trials 2` behaves like
// `rbb run stability --trials=2` with table output, honoring the
// historical environment contract (RBB_BENCH_SCALE for sweep sizes,
// RBB_CSV_DIR for per-table CSV mirrors) so existing scripts and the CI
// smoke loop keep working unchanged.
#pragma once

namespace rbb::runner {

/// Runs the registered experiment `name` the way its legacy bench binary
/// did: parses --param[=| ]value options against the experiment's specs
/// (--help prints usage), runs at the RBB_BENCH_SCALE scale, prints the
/// table rendering to stdout, and mirrors each table to RBB_CSV_DIR as
/// CSV when set.  Returns the process exit code.
int legacy_bench_main(const char* name, int argc, const char* const* argv);

}  // namespace rbb::runner
