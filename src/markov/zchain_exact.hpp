// Exact transient analysis of the eq. (4) Z-chain (Lemma 5).
//
// The chain Z_t = max-style recursion with arrivals X ~ Bin(floor(3n/4),
// 1/n) and absorption at 0 is one-dimensional, so its transient law is
// computable to machine precision by forward iteration of the truncated
// distribution vector -- no Monte-Carlo error.  This gives the exact
// survival function P_k(tau > t), against which Lemma 5's bound
// e^{-t/144} (for t >= 8k) is compared point-by-point in exp_exact_chain,
// and exact absorption-time moments for the Tetris drain analysis.
//
// Truncation: states above `cap` are saturated into `cap`.  Saturation
// moves probability mass *down*, toward absorption, so the reported curve
// is a rigorous lower bound on the true survival and the pointwise error
// is at most the accumulated saturated mass, which is exposed so callers
// can verify it is negligible (below 1e-12 for the default cap on every
// sweep in this repository).
#pragma once

#include <cstdint>
#include <vector>

namespace rbb {

/// Result of an exact Z-chain forward iteration.
struct ZChainExactResult {
  /// survival[t] = P_start(tau > t), for t = 0 .. t_max.
  std::vector<double> survival;
  /// Expected absorption time, truncated at t_max:
  /// sum_{t=0}^{t_max} P(tau > t)  (a lower bound on E[tau], tight once
  /// survival[t_max] is negligible).
  double expected_absorption = 0.0;
  /// Total probability mass ever pushed down onto the truncation cap;
  /// upper-bounds the (downward) truncation error on every survival entry.
  double saturated_mass = 0.0;
};

/// Runs the exact forward iteration from Z_0 = start for t_max steps.
/// n parameterizes the arrival law Binomial(floor(3n/4), 1/n); cap is the
/// state-space truncation bound (must exceed start).
[[nodiscard]] ZChainExactResult exact_zchain_survival(std::uint32_t n,
                                                      std::uint64_t start,
                                                      std::uint64_t t_max,
                                                      std::size_t cap = 4096);

/// Exact stationary law of a single leaky bin ([18]): the reflecting
/// chain Z' = max(Z - 1, 0) + X with X ~ Binomial(n, lambda/n) -- the
/// marginal queue of the probabilistic Tetris variant where ~lambda * n
/// fresh balls arrive per round.  Requires lambda in (0, 1) (positive
/// drift at lambda >= 1: no stationary law).
struct LeakyQueueExact {
  /// pmf[k] = stationary P(queue == k), truncated at cap.
  std::vector<double> pmf;
  /// Stationary P(queue == 0).  Rate conservation forces this to equal
  /// 1 - lambda exactly (each non-empty round serves one ball; the
  /// service rate must match the arrival rate lambda), which the tests
  /// assert against the solved law.
  double p_empty = 0.0;
  double mean = 0.0;
  /// Smallest k with P(queue > k) <= 1e-9 (a tail-length summary).
  std::uint64_t q999 = 0;
};

[[nodiscard]] LeakyQueueExact exact_leaky_queue_stationary(
    std::uint32_t n, double lambda, std::size_t cap = 4096);

}  // namespace rbb
