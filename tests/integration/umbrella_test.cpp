// Compilation + smoke test of the umbrella header: every public type is
// reachable through a single include, and a miniature end-to-end pipeline
// touches one object from each subsystem.
#include "rbb.hpp"

#include <gtest/gtest.h>

namespace rbb {
namespace {

TEST(Umbrella, EverySubsystemReachable) {
  Rng rng(1);                                        // support/rng
  const BinomialSampler sampler(12, 0.25);           // support/samplers
  OnlineMoments moments;                             // support/stats
  moments.add(static_cast<double>(sampler(rng)));
  EXPECT_GE(chernoff_upper_bound(3.0, 0.5), 0.0);    // support/bounds
  DenseSet set(4);                                   // support/dense_set
  set.insert(2);
  Table table({"x"});                                // support/table
  table.row().cell(std::uint64_t{1});
  EXPECT_FALSE(table.markdown().empty());
  EXPECT_EQ(to_string(BenchScale::kSmoke), "smoke"); // support/scale

  const Graph g = make_cycle(8);                     // graph
  LoadConfig q = make_config(InitialConfig::kOnePerBin, 8, 8, rng);  // core
  RepeatedBallsProcess process(q, rng.split());      // core/process
  process.run(16);
  EXPECT_EQ(total_balls(process.loads()), 8u);

  TokenProcess::Options options;                     // core/token_process
  options.track_visits = false;
  TokenProcess tokens(8, {0, 1, 2, 3}, options, rng.split());
  tokens.run(4);

  const LoadConfig faulted =                         // core/faults
      apply_fault(FaultStrategy::kRandom, 8, 8, q, rng);
  EXPECT_EQ(total_balls(faulted), 8u);

  TetrisProcess tetris(q, rng.split());              // tetris
  tetris.run(4);
  ZChain chain(64, 3);                               // tetris/zchain
  chain.step(rng);
  LeakyBinsProcess leaky(q, 0.5, rng.split());       // tetris/leaky
  leaky.run(4);

  CoupledProcesses coupled(LoadConfig{1, 0, 1, 0, 1, 0, 1, 0},
                           rng.split());             // coupling
  coupled.run(4);

  EXPECT_LE(oneshot_max_load(8, 8, rng), 8u);        // baselines
  IndependentWalksProcess walks(8, {0, 1, 2, 3}, nullptr, rng.split());
  walks.run(4);
  RepeatedDChoicesProcess dchoices(q, 2, rng.split());
  dchoices.run(4);
  ClosedJacksonNetwork jackson(q, rng.split());
  jackson.run_until(2.0);

  TraversalParams tp;                                // traversal
  tp.n = 8;
  tp.max_rounds = 2000;
  const TraversalResult tr = run_traversal(tp, 5);
  EXPECT_GT(tr.rounds_run, 0u);

  StabilityParams sp;                                // analysis
  sp.n = 16;
  sp.rounds = 32;
  sp.trials = 1;
  EXPECT_GT(run_stability(sp).window_max.mean(), 0.0);

  (void)g;
}

}  // namespace
}  // namespace rbb
