// Tests for the adversarial fault injector.
#include "core/faults.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace rbb {
namespace {

TEST(FaultStrategyNames, RoundTrip) {
  for (const auto s :
       {FaultStrategy::kAllToOne, FaultStrategy::kRandom,
        FaultStrategy::kHalfBins, FaultStrategy::kReverseSort}) {
    EXPECT_EQ(fault_strategy_from_string(to_string(s)), s);
  }
  EXPECT_THROW((void)fault_strategy_from_string("??"), std::invalid_argument);
}

TEST(ApplyFault, AllToOne) {
  Rng rng(1);
  const LoadConfig q =
      apply_fault(FaultStrategy::kAllToOne, 8, 8, LoadConfig{}, rng);
  EXPECT_EQ(q[0], 8u);
  EXPECT_EQ(total_balls(q), 8u);
}

TEST(ApplyFault, RandomConserves) {
  Rng rng(2);
  const LoadConfig q =
      apply_fault(FaultStrategy::kRandom, 16, 16, LoadConfig{}, rng);
  EXPECT_EQ(total_balls(q), 16u);
  EXPECT_EQ(q.size(), 16u);
}

TEST(ApplyFault, HalfBinsLeavesHalfEmpty) {
  Rng rng(3);
  const LoadConfig q =
      apply_fault(FaultStrategy::kHalfBins, 8, 8, LoadConfig{}, rng);
  EXPECT_EQ(total_balls(q), 8u);
  EXPECT_GE(empty_bins(q), 4u);
}

TEST(ApplyFault, ReverseSortPermutesProfile) {
  Rng rng(4);
  const LoadConfig current{0, 3, 1, 0, 2};
  const LoadConfig q =
      apply_fault(FaultStrategy::kReverseSort, 5, 6, current, rng);
  EXPECT_EQ(total_balls(q), 6u);
  EXPECT_TRUE(std::is_sorted(q.begin(), q.end(), std::greater<>()));
  EXPECT_EQ(q[0], 3u);
}

TEST(ApplyFault, ReverseSortValidatesCurrent) {
  Rng rng(5);
  EXPECT_THROW(
      (void)apply_fault(FaultStrategy::kReverseSort, 5, 6, LoadConfig{}, rng),
      std::invalid_argument);
}

TEST(ApplyFaultTokens, AllStrategiesPlaceEveryToken) {
  Rng rng(6);
  for (const auto s :
       {FaultStrategy::kAllToOne, FaultStrategy::kRandom,
        FaultStrategy::kHalfBins, FaultStrategy::kReverseSort}) {
    const auto pos = apply_fault_tokens(s, 16, 16, rng);
    ASSERT_EQ(pos.size(), 16u) << to_string(s);
    for (const auto p : pos) EXPECT_LT(p, 16u) << to_string(s);
  }
}

TEST(ApplyFaultTokens, AllToOneConcentrates) {
  Rng rng(7);
  const auto pos = apply_fault_tokens(FaultStrategy::kAllToOne, 8, 8, rng);
  for (const auto p : pos) EXPECT_EQ(p, 0u);
}

TEST(ApplyPartialFault, MovesExactlyKBalls) {
  const LoadConfig current{1, 4, 2, 3};
  const LoadConfig q = apply_partial_fault(current, 3);
  EXPECT_EQ(total_balls(q), 10u);
  EXPECT_EQ(q[0], 4u);  // 1 + 3 moved
  // Balls were taken from the heaviest bins.
  EXPECT_LE(q[1], current[1]);
}

TEST(ApplyPartialFault, KZeroIsIdentity) {
  const LoadConfig current{2, 3, 1};
  EXPECT_EQ(apply_partial_fault(current, 0), current);
}

TEST(ApplyPartialFault, LargeKDegeneratesToAllInOne) {
  const LoadConfig current{1, 1, 1, 1};
  const LoadConfig q = apply_partial_fault(current, 100);
  EXPECT_EQ(q[0], 4u);
  EXPECT_EQ(empty_bins(q), 3u);
}

TEST(ApplyPartialFault, TakesFromHeaviestFirst) {
  const LoadConfig current{0, 10, 1, 1};
  const LoadConfig q = apply_partial_fault(current, 2);
  EXPECT_EQ(q[1], 8u);  // both came off the heavy bin
  EXPECT_EQ(q[2], 1u);
  EXPECT_EQ(q[3], 1u);
  EXPECT_EQ(q[0], 2u);
}

TEST(ApplyPartialFault, RejectsEmpty) {
  EXPECT_THROW((void)apply_partial_fault(LoadConfig{}, 1),
               std::invalid_argument);
}

TEST(FaultSchedule, FiresPeriodically) {
  const FaultSchedule sched(10);
  EXPECT_FALSE(sched.fires_at(0));
  EXPECT_FALSE(sched.fires_at(5));
  EXPECT_TRUE(sched.fires_at(10));
  EXPECT_FALSE(sched.fires_at(11));
  EXPECT_TRUE(sched.fires_at(20));
}

TEST(FaultSchedule, ZeroPeriodNeverFires) {
  const FaultSchedule sched(0);
  for (std::uint64_t t = 0; t < 100; ++t) EXPECT_FALSE(sched.fires_at(t));
}

}  // namespace
}  // namespace rbb
