// The probabilistic Tetris / "leaky bins" process of Berenbrink et al.
// (PODC 2016), cited by the paper (Sect. 1.3, ref. [18]) as the follow-up
// that randomized the arrival stream: instead of exactly (3/4)n fresh
// balls, each round brings Binomial(n, lambda) new balls, lambda in [0,1].
//
// For lambda < 1 the drift per non-empty bin stays negative and the system
// is stable (logarithmic loads); at lambda = 1 the slack vanishes and the
// queue mass grows.  Experiment E16 sweeps lambda across the transition.
#pragma once

#include <cstdint>

#include "core/config.hpp"
#include "support/rng.hpp"
#include "support/samplers.hpp"

namespace rbb {

/// Per-round statistics of the leaky-bins process.
struct LeakyRoundStats {
  std::uint32_t max_load = 0;
  std::uint32_t empty_bins = 0;
  std::uint64_t total_balls = 0;
  std::uint64_t arrivals = 0;  // this round's Binomial(n, lambda) draw
};

/// Leaky-bins process: one departure per non-empty bin per round (the ball
/// leaves the system), Binomial(n, lambda) fresh arrivals placed u.a.r.
class LeakyBinsProcess {
 public:
  LeakyBinsProcess(LoadConfig initial, double lambda, Rng rng);

  LeakyRoundStats step();
  LeakyRoundStats run(std::uint64_t rounds);

  [[nodiscard]] std::uint32_t bin_count() const noexcept {
    return static_cast<std::uint32_t>(loads_.size());
  }
  [[nodiscard]] double lambda() const noexcept { return lambda_; }
  [[nodiscard]] std::uint64_t round() const noexcept { return round_; }
  [[nodiscard]] const LoadConfig& loads() const noexcept { return loads_; }
  [[nodiscard]] std::uint32_t max_load() const noexcept { return max_load_; }
  [[nodiscard]] std::uint32_t empty_bins() const noexcept { return empty_; }
  [[nodiscard]] std::uint64_t total_balls() const noexcept { return balls_; }

  /// Testing hook; throws std::logic_error if cached stats drift.
  void check_invariants() const;

 private:
  LoadConfig loads_;
  double lambda_;
  Rng rng_;
  BinomialSampler arrival_law_;
  std::uint64_t balls_;
  std::uint64_t round_ = 0;
  std::uint32_t max_load_ = 0;
  std::uint32_t empty_ = 0;
};

}  // namespace rbb
