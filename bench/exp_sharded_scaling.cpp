// Extra -- sharded round-kernel scaling (src/par/).  Back-compat shim:
// the experiment lives in the registry
// (src/runner/experiments/sharded_scaling.cpp); this binary behaves like
// `rbb run sharded_scaling` with table output, honoring RBB_BENCH_SCALE
// and RBB_CSV_DIR like every other exp_* shim.
#include "runner/legacy.hpp"

int main(int argc, char** argv) {
  return rbb::runner::legacy_bench_main("sharded_scaling", argc, argv);
}
