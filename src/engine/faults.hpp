// Fault-injection plans for the Engine (DESIGN.md Sect. 2), wrapping the
// adversarial strategies of core/faults (paper, Sect. 4.1).
//
// A fault plan decides *when* a fault fires (FaultSchedule: every
// `period` rounds) and *what* it does to the process.  The engine calls
// plan.maybe_inject(process, rounds_done) after each executed round;
// faulty rounds do not count as process rounds, exactly as in the paper's
// adversary model.  The plan owns its own RNG stream so injecting faults
// never perturbs the process's random choices -- trajectories with and
// without faults stay comparable, and the parity tests stay exact.
#pragma once

#include <cstdint>
#include <utility>

#include "core/config.hpp"
#include "core/faults.hpp"
#include "engine/process.hpp"

namespace rbb {

/// The default: no faults ever.
struct NoFaults {
  template <typename P>
  bool maybe_inject(P&, std::uint64_t) noexcept {
    return false;
  }
};

/// Periodic plan with an arbitrary injection action `fn(process)`.
template <typename Fn>
class PeriodicFaults {
 public:
  PeriodicFaults(FaultSchedule schedule, Fn fn)
      : schedule_(schedule), fn_(std::move(fn)) {}

  template <typename P>
  bool maybe_inject(P& p, std::uint64_t rounds_done) {
    if (!schedule_.fires_at(rounds_done)) return false;
    fn_(p);
    return true;
  }

  [[nodiscard]] const FaultSchedule& schedule() const noexcept {
    return schedule_;
  }

 private:
  FaultSchedule schedule_;
  Fn fn_;
};

/// Periodic adversarial reassignment of a *load* process (anything with
/// ball_count() and reassign(LoadConfig): the load-only kernel,
/// d-choices).  period == 0 disables.
[[nodiscard]] inline auto make_load_fault_plan(std::uint64_t period,
                                               FaultStrategy strategy,
                                               Rng rng) {
  return PeriodicFaults(
      FaultSchedule(period), [strategy, rng](auto& p) mutable {
        p.reassign(apply_fault(strategy, engine_bin_count(p), p.ball_count(),
                               p.loads(), rng));
      });
}

/// Periodic adversarial reassignment of a *token* process (anything with
/// reassign(vector<uint32_t>): the token process, independent walks).
/// period == 0 disables.
[[nodiscard]] inline auto make_token_fault_plan(std::uint64_t period,
                                                FaultStrategy strategy,
                                                Rng rng) {
  return PeriodicFaults(
      FaultSchedule(period), [strategy, rng](auto& p) mutable {
        const std::uint32_t tokens = [&p] {
          if constexpr (requires { p.token_count(); }) {
            return p.token_count();
          } else {
            return p.ball_count();
          }
        }();
        p.reassign(apply_fault_tokens(strategy, engine_bin_count(p), tokens,
                                      rng));
      });
}

/// Periodic adversarial reassignment of a *mixed-regime* process
/// (anything with class_count()/class_load()/capacity() and
/// reassign(vector<load_t>): MixedProcessCore and its adapters).  The
/// injected census preserves per-class totals and honors capacities
/// (apply_fault_mixed), so conservation survives the fault.  period ==
/// 0 disables.
[[nodiscard]] inline auto make_mixed_fault_plan(std::uint64_t period,
                                                FaultStrategy strategy,
                                                Rng rng) {
  return PeriodicFaults(
      FaultSchedule(period), [strategy, rng](auto& p) mutable {
        const std::uint32_t n = engine_bin_count(p);
        const std::uint32_t k = p.class_count();
        std::vector<load_t> current(static_cast<std::size_t>(n) * k);
        std::vector<load_t> caps(n);
        for (std::uint32_t u = 0; u < n; ++u) {
          caps[u] = p.capacity(u);
          for (std::uint32_t c = 0; c < k; ++c) {
            current[static_cast<std::size_t>(u) * k + c] = p.class_load(u, c);
          }
        }
        p.reassign(apply_fault_mixed(strategy, n, k, current, caps, rng));
      });
}

}  // namespace rbb
