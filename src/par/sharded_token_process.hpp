// Sharded port of the identity-tracking token process (DESIGN.md
// Sect. 5): the FIFO multi-token traversal at mega-n scale.
//
// Same two-phase throw/commit as ShardedRepeatedBallsProcess, but the
// scatter carries (destination, token) pairs and the commit phase
// enqueues tokens instead of incrementing counters.  Enqueue order is
// not commutative, so the commit drains the per-(stripe, shard) buffers
// in ascending source-stripe order; each stripe fills its buffers in
// ascending releasing-bin order, hence every bin receives its arrivals
// sorted by releasing bin -- a canonical order independent of thread
// count and shard size.  The parity oracle is
// par::SequentialCounterTokenProcess (reference.hpp), which realizes
// the same order with a plain loop.
//
// Scope of the port (the mega-n subset): FIFO queue policy on the
// complete graph, with per-token progress counters.  The per-token
// visited bitsets and delay histograms of core/token_process.hpp are
// deliberately absent -- at n >= 10^8 a visited matrix alone is m*n bits
// = petabyte-scale; cover-time experiments stay on the sequential
// TokenProcess.
#pragma once

#include <cstdint>
#include <vector>

#include "core/config.hpp"
#include "core/token_process.hpp"  // BallQueue, QueuePolicy
#include "par/shard.hpp"
#include "par/sharded_process.hpp"  // ShardedOptions
#include "par/stripe_exec.hpp"
#include "support/counter_rng.hpp"

namespace rbb::par {

/// FIFO multi-token traversal on K_n, sharded across cores.
class ShardedTokenProcess {
 public:
  /// `start_bin[i]` is the initial bin of token i; co-located tokens
  /// enqueue in token-id order (as in TokenProcess).
  ShardedTokenProcess(std::uint32_t bins,
                      std::vector<std::uint32_t> start_bin,
                      std::uint64_t seed, ShardedOptions options = {});

  /// One synchronous round: every non-empty bin releases its FIFO head.
  void step();
  /// Runs `rounds` rounds.
  void run(std::uint64_t rounds);

  [[nodiscard]] std::uint32_t bin_count() const noexcept { return bins_; }
  [[nodiscard]] std::uint32_t token_count() const noexcept {
    return static_cast<std::uint32_t>(token_bin_.size());
  }
  [[nodiscard]] std::uint64_t round() const noexcept { return round_; }

  /// Load of bin u (queue length).
  [[nodiscard]] std::uint32_t load(std::uint32_t u) const {
    return static_cast<std::uint32_t>(queues_[u].size());
  }
  /// Maximum load over all bins; O(1) (maintained by the commit scan).
  [[nodiscard]] std::uint32_t max_load() const noexcept { return max_load_; }
  /// Number of empty bins; O(1) (maintained by the commit scan).
  [[nodiscard]] std::uint32_t empty_bins() const noexcept { return empty_; }
  /// Per-bin load snapshot (off the hot path; O(n)).
  [[nodiscard]] LoadConfig loads() const;

  /// Current bin of token i.
  [[nodiscard]] std::uint32_t token_bin(std::uint32_t token) const {
    return token_bin_[token];
  }
  /// Walk steps token i has performed (times it was released).
  [[nodiscard]] std::uint64_t progress(std::uint32_t token) const {
    return progress_[token];
  }
  /// Minimum progress over all tokens; O(m).
  [[nodiscard]] std::uint64_t min_progress() const;

  [[nodiscard]] const ShardPlan& plan() const noexcept { return plan_; }

  /// Adversarial reassignment (Sect. 4.1 semantics, as in
  /// TokenProcess::reassign): every token i moves to new_bin[i]; queues
  /// are rebuilt in token-id order; progress persists.
  void reassign(const std::vector<std::uint32_t>& new_bin);

  /// Testing hook: queue/token-position consistency; throws
  /// std::logic_error on violation.
  void check_invariants() const;

 private:
  void rebuild_queues();
  void rescan_stats();

  struct Arrival {
    std::uint32_t dest;
    std::uint32_t token;
  };

  struct alignas(64) StripeAcc {
    std::uint32_t max = 0;
    std::uint32_t zeros = 0;
  };

  std::uint32_t bins_;
  ShardPlan plan_;
  CounterRng rng_;
  StripeExecutor exec_;
  Rng dummy_{0};  // BallQueue::pop needs an Rng&; unused under FIFO
  std::vector<BallQueue> queues_;
  std::vector<std::uint32_t> token_bin_;
  std::vector<std::uint64_t> progress_;
  std::uint64_t round_ = 0;
  std::uint32_t max_load_ = 0;
  std::uint32_t empty_ = 0;

  /// buffers_[stripe * shard_count + target_shard], ascending releasing
  /// bin within each buffer.
  std::vector<std::vector<Arrival>> buffers_;
  std::vector<StripeAcc> acc_;
};

}  // namespace rbb::par
