// Unit and statistical tests for the RNG substrate.
#include "support/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <map>
#include <numeric>
#include <set>
#include <vector>

namespace rbb {
namespace {

TEST(SplitMix64, ProducesKnownSequence) {
  // Reference values for seed 1234567 from the public-domain reference
  // implementation.
  SplitMix64 sm(0);
  const std::uint64_t a = sm();
  const std::uint64_t b = sm();
  EXPECT_NE(a, b);
  // Determinism: same seed, same sequence.
  SplitMix64 sm2(0);
  EXPECT_EQ(sm2(), a);
  EXPECT_EQ(sm2(), b);
}

TEST(SplitMix64, DistinctSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  EXPECT_NE(a(), b());
}

TEST(Xoshiro256pp, DeterministicForSeed) {
  Xoshiro256pp a(42);
  Xoshiro256pp b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro256pp, StreamsAreDistinct) {
  Xoshiro256pp a(42, 0);
  Xoshiro256pp b(42, 1);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LE(equal, 1);
}

TEST(Xoshiro256pp, JumpChangesState) {
  Xoshiro256pp a(7);
  Xoshiro256pp b(7);
  b.jump();
  EXPECT_NE(a.state(), b.state());
  // Jumped generator produces a different sequence.
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LE(equal, 1);
}

TEST(Xoshiro256pp, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Xoshiro256pp>);
  static_assert(std::uniform_random_bit_generator<Rng>);
  SUCCEED();
}

TEST(Rng, BelowRespectsBound) {
  Rng rng(1);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.below(bound), bound);
    }
  }
}

TEST(Rng, BelowOneIsAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BelowIsApproximatelyUniform) {
  // Chi-square on 16 cells, 160k draws: threshold ~ 37 for df=15 at
  // p ~ 0.001; generous margin avoids flakes while catching gross bias.
  Rng rng(123);
  constexpr std::uint64_t kCells = 16;
  constexpr std::uint64_t kDraws = 160000;
  std::array<std::uint64_t, kCells> counts{};
  for (std::uint64_t i = 0; i < kDraws; ++i) ++counts[rng.below(kCells)];
  const double expected = static_cast<double>(kDraws) / kCells;
  double chi2 = 0.0;
  for (const auto c : counts) {
    const double d = static_cast<double>(c) - expected;
    chi2 += d * d / expected;
  }
  EXPECT_LT(chi2, 60.0);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(5);
  double sum = 0.0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / kDraws, 0.5, 0.01);
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng rng(6);
  constexpr int kDraws = 100000;
  int hits = 0;
  for (int i = 0; i < kDraws; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / kDraws, 0.3, 0.01);
}

TEST(Rng, ExponentialHasUnitMean) {
  Rng rng(7);
  constexpr int kDraws = 200000;
  double sum = 0.0;
  for (int i = 0; i < kDraws; ++i) {
    const double x = rng.exponential();
    ASSERT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / kDraws, 1.0, 0.02);
}

TEST(Rng, ExponentialRateScales) {
  Rng rng(8);
  constexpr int kDraws = 200000;
  double sum = 0.0;
  for (int i = 0; i < kDraws; ++i) sum += rng.exponential(4.0);
  EXPECT_NEAR(sum / kDraws, 0.25, 0.01);
}

TEST(Rng, IndexCoversAllValues) {
  Rng rng(10);
  std::set<std::uint32_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.index(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, SplitAdvancesParentAndDiverges) {
  Rng parent(55);
  Rng witness(55);
  Rng child_a = parent.split();
  Rng child_b = parent.split();
  // Parent advanced: it no longer tracks the untouched witness.
  EXPECT_NE(parent(), witness());
  // Children and parent produce pairwise distinct streams.
  int equal_ab = 0;
  int equal_ap = 0;
  for (int i = 0; i < 64; ++i) {
    const std::uint64_t a = child_a();
    const std::uint64_t b = child_b();
    if (a == b) ++equal_ab;
    if (a == parent()) ++equal_ap;
  }
  EXPECT_LE(equal_ab, 1);
  EXPECT_LE(equal_ap, 1);
}

TEST(Mix64, DistinctPairsGiveDistinctValues) {
  std::set<std::uint64_t> values;
  for (std::uint64_t a = 0; a < 30; ++a) {
    for (std::uint64_t b = 0; b < 30; ++b) {
      values.insert(mix64(a, b));
    }
  }
  EXPECT_EQ(values.size(), 900u);
}

TEST(Shuffle, ProducesPermutation) {
  Rng rng(11);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  auto w = v;
  shuffle(w.begin(), w.end(), rng);
  EXPECT_NE(v, w);  // astronomically unlikely to be identity
  std::sort(w.begin(), w.end());
  EXPECT_EQ(v, w);
}

TEST(Shuffle, UniformOverSmallPermutations) {
  // All 6 permutations of 3 elements should be ~equally likely.
  Rng rng(12);
  std::map<std::array<int, 3>, int> counts;
  constexpr int kDraws = 60000;
  for (int i = 0; i < kDraws; ++i) {
    std::array<int, 3> a{0, 1, 2};
    shuffle(a.begin(), a.end(), rng);
    ++counts[a];
  }
  ASSERT_EQ(counts.size(), 6u);
  for (const auto& [perm, count] : counts) {
    EXPECT_NEAR(static_cast<double>(count) / kDraws, 1.0 / 6.0, 0.01);
  }
}

TEST(Shuffle, HandlesEmptyAndSingleton) {
  Rng rng(13);
  std::vector<int> empty;
  shuffle(empty.begin(), empty.end(), rng);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one{7};
  shuffle(one.begin(), one.end(), rng);
  EXPECT_EQ(one, std::vector<int>{7});
}

// Property sweep: below(bound) is unbiased for bounds that stress the
// rejection threshold (powers of two, odd primes, near-2^64 values).
class RngBoundSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngBoundSweep, MeanMatchesUniform) {
  const std::uint64_t bound = GetParam();
  Rng rng(bound ^ 0xabcdef);
  constexpr int kDraws = 50000;
  long double sum = 0.0L;
  for (int i = 0; i < kDraws; ++i) {
    const std::uint64_t x = rng.below(bound);
    ASSERT_LT(x, bound);
    sum += static_cast<long double>(x);
  }
  const long double mean = sum / kDraws;
  const long double expected = (static_cast<long double>(bound) - 1.0L) / 2.0L;
  const long double sd =
      static_cast<long double>(bound) / std::sqrt(12.0L * kDraws);
  EXPECT_NEAR(static_cast<double>(mean), static_cast<double>(expected),
              static_cast<double>(6.0L * sd + 1.0L));
}

INSTANTIATE_TEST_SUITE_P(Bounds, RngBoundSweep,
                         ::testing::Values(2ull, 3ull, 7ull, 16ull, 100ull,
                                           257ull, 1024ull, 4097ull,
                                           (1ull << 32) + 1,
                                           (1ull << 63) + 12345));

}  // namespace
}  // namespace rbb
