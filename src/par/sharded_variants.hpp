// Sharded and counter-stream instantiations of the remaining process
// variants (DESIGN.md Sect. 5): Tetris, repeated d-choices, leaky bins.
//
// These are what the policy refactor bought: every variant is the SAME
// core template as the load-only kernel, so porting it to the sharded
// backend is one constructor adapter, not a parallel class hierarchy.
// For each variant the sequential counter-stream sibling is the parity
// oracle (tests/par/ pins trajectories bit-identical across worker
// counts and shard sizes).
//
// Conventions inherited from the kernel layer (core/kernel/):
//   * d-choices draws candidate j of releasing bin u on counter slot
//     (j, u) and places by the batch-snapshot rule -- all choices read
//     the post-departure configuration (variants.hpp documents why).
//   * Tetris / leaky-bins fresh arrival i of a round draws on the
//     dedicated fresh-arrival slot space; leaky bins' per-round
//     Binomial(n, lambda) count comes from the round's derived
//     substream, drawn once before any phase.  Deletions (departing
//     balls leaving the system) happen in the departure walk; arrivals
//     commit in the canonical sorted-by-releasing-slot order.
#pragma once

#include <cstdint>
#include <utility>

#include "core/config.hpp"
#include "core/kernel/ball_kernel.hpp"
#include "par/sharded_process.hpp"  // ShardedOptions

namespace rbb::par {

/// Tetris at mega n: one round of one instance across all cores.
class ShardedTetrisProcess
    : public kernel::BallProcessCore<kernel::Tetris<kernel::CounterStream>,
                                     kernel::ShardedExecution> {
 public:
  /// `arrivals_per_round` == 0 selects the paper's floor(3n/4).
  /// Ball-by-ball arrival sampling only (multinomial splitting is
  /// inherently sequential).
  explicit ShardedTetrisProcess(LoadConfig initial, std::uint64_t seed,
                                std::uint64_t arrivals_per_round = 0,
                                ShardedOptions options = {})
      : BallProcessCore(std::move(initial),
                        kernel::Tetris<kernel::CounterStream>(
                            kernel::CounterStream(seed), arrivals_per_round),
                        options) {}
};

/// Single-threaded Tetris under the counter stream; the parity oracle
/// for ShardedTetrisProcess.
class SequentialCounterTetrisProcess
    : public kernel::BallProcessCore<kernel::Tetris<kernel::CounterStream>,
                                     kernel::SequentialExecution> {
 public:
  explicit SequentialCounterTetrisProcess(LoadConfig initial,
                                          std::uint64_t seed,
                                          std::uint64_t arrivals_per_round = 0)
      : BallProcessCore(std::move(initial),
                        kernel::Tetris<kernel::CounterStream>(
                            kernel::CounterStream(seed), arrivals_per_round)) {
  }
};

/// Repeated d-choices at mega n (batch-snapshot Greedy[d]).
class ShardedDChoicesProcess
    : public kernel::BallProcessCore<kernel::DChoices<kernel::CounterStream>,
                                     kernel::ShardedExecution> {
 public:
  ShardedDChoicesProcess(LoadConfig initial, std::uint32_t d,
                         std::uint64_t seed, ShardedOptions options = {})
      : BallProcessCore(std::move(initial),
                        kernel::DChoices<kernel::CounterStream>(
                            kernel::CounterStream(seed), d),
                        options) {}
};

/// Single-threaded batch-snapshot Greedy[d] under the counter stream;
/// the parity oracle for ShardedDChoicesProcess.
class SequentialCounterDChoicesProcess
    : public kernel::BallProcessCore<kernel::DChoices<kernel::CounterStream>,
                                     kernel::SequentialExecution> {
 public:
  SequentialCounterDChoicesProcess(LoadConfig initial, std::uint32_t d,
                                   std::uint64_t seed)
      : BallProcessCore(std::move(initial),
                        kernel::DChoices<kernel::CounterStream>(
                            kernel::CounterStream(seed), d)) {}
};

/// Threshold allocation at mega n (batch-snapshot probing; the 1-2-3
/// Toolkit variant).  Probe j of releasing bin u draws on candidate
/// slot (j, u), so the choose phase reuses the d-choices plane family.
class ShardedThresholdProcess
    : public kernel::BallProcessCore<kernel::Threshold<kernel::CounterStream>,
                                     kernel::ShardedExecution> {
 public:
  ShardedThresholdProcess(LoadConfig initial, load_t threshold,
                          std::uint32_t probes, std::uint64_t seed,
                          ShardedOptions options = {})
      : BallProcessCore(std::move(initial),
                        kernel::Threshold<kernel::CounterStream>(
                            kernel::CounterStream(seed), threshold, probes),
                        options) {}
};

/// Single-threaded threshold allocation under the counter stream; the
/// parity oracle for ShardedThresholdProcess.
class SequentialCounterThresholdProcess
    : public kernel::BallProcessCore<kernel::Threshold<kernel::CounterStream>,
                                     kernel::SequentialExecution> {
 public:
  SequentialCounterThresholdProcess(LoadConfig initial, load_t threshold,
                                    std::uint32_t probes, std::uint64_t seed)
      : BallProcessCore(std::move(initial),
                        kernel::Threshold<kernel::CounterStream>(
                            kernel::CounterStream(seed), threshold, probes)) {}
};

/// Leaky bins at mega n.
class ShardedLeakyBinsProcess
    : public kernel::BallProcessCore<kernel::Leaky<kernel::CounterStream>,
                                     kernel::ShardedExecution> {
 public:
  ShardedLeakyBinsProcess(LoadConfig initial, double lambda,
                          std::uint64_t seed, ShardedOptions options = {})
      : BallProcessCore(std::move(initial),
                        kernel::Leaky<kernel::CounterStream>(
                            kernel::CounterStream(seed), lambda),
                        options) {}
};

/// Single-threaded leaky bins under the counter stream; the parity
/// oracle for ShardedLeakyBinsProcess.
class SequentialCounterLeakyBinsProcess
    : public kernel::BallProcessCore<kernel::Leaky<kernel::CounterStream>,
                                     kernel::SequentialExecution> {
 public:
  SequentialCounterLeakyBinsProcess(LoadConfig initial, double lambda,
                                    std::uint64_t seed)
      : BallProcessCore(std::move(initial),
                        kernel::Leaky<kernel::CounterStream>(
                            kernel::CounterStream(seed), lambda)) {}
};

}  // namespace rbb::par
