// Extra -- scaling of the sharded round kernels (src/par/): rounds/sec
// and ns/ball for one mega-n instance, versus the sequential kernels,
// for EVERY variant of the policy core.
//
// This is the experiment behind BENCH_sharded.json, the repository's
// tracked perf baseline: run it with --format=json and compare the
// rounds_per_sec column across commits (tools/bench_diff.py diffs two
// baselines row by row).  Per (n, variant), three backends are timed:
//
//   seq          the production sequential kernel (xoshiro draws),
//   seq-counter  the sequential sibling making counter-RNG draws
//                (isolates the RNG-swap cost from the sharding win),
//   sharded xT   the two-phase kernel at each requested thread count.
//
// Variants: load (the paper's process), token (FIFO, m = n tokens),
// tetris (3n/4 fresh arrivals/round), dchoices (d = 2).
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/process.hpp"
#include "core/token_process.hpp"
#include "baselines/repeated_dchoices.hpp"
#include "par/sharded_process.hpp"
#include "par/sharded_token_process.hpp"
#include "par/sharded_variants.hpp"
#include "runner/registry.hpp"
#include "support/thread_pool.hpp"
#include "tetris/tetris.hpp"

namespace rbb::runner {

namespace {

/// Wall seconds for `rounds` rounds of `proc` after one untimed warm-up
/// round (faults in the arrays and sizes the scatter buffers).
template <typename Process>
double time_rounds(Process& proc, std::uint64_t rounds) {
  proc.step();
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t r = 0; r < rounds; ++r) proc.step();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

void register_sharded_scaling(Registry& registry) {
  Experiment e;
  e.name = "sharded_scaling";
  e.claim = "";
  e.title =
      "sharded round kernels: rounds/sec and ns/ball vs n x variant x "
      "threads";
  e.description =
      "Times one instance of every policy-core variant (load-only, FIFO "
      "token, Tetris, d-choices with d = 2) on three backends: the "
      "sequential xoshiro kernel, the sequential counter-RNG sibling "
      "(isolating the RNG swap), and the sharded two-phase kernel "
      "(src/par/) at several worker counts.  One round of one instance "
      "runs across all cores; trajectories are bit-identical for every "
      "thread count and shard size.  n sweeps by scale up to 10^8 at "
      "--scale=mega (the token variant caps at 10^6: per-bin queues are "
      "memory-bound, noted in the output); --threads fixes a single "
      "worker count, otherwise {1, 4, max} are measured.  The JSON "
      "output of this experiment is the tracked perf baseline "
      "BENCH_sharded.json.  Single-instance measurement: --trials is "
      "ignored.";
  e.family = ProcessFamily::kKernelSuite;
  e.params = {
      {"rounds", ParamSpec::Type::kU64, "0",
       "measured rounds per point (0 = auto, ~6.4e7 bin-visits per "
       "point, clamped to [2, 32])"},
      {"shard-size", ParamSpec::Type::kU64, "0",
       "bins per shard for the sharded kernels (0 = 16384)"},
      {"variant", ParamSpec::Type::kString, "all",
       "kernel variant to time: all, load, token, tetris, dchoices"},
  };
  e.run = [](const RunContext& ctx) {
    const std::vector<std::uint64_t> ns = by_scale<std::vector<std::uint64_t>>(
        ctx.scale, {100000}, {1000000, 10000000}, {1000000, 10000000},
        {1000000, 10000000, 100000000});
    const auto shard_size =
        static_cast<std::uint32_t>(ctx.params.u32("shard-size"));
    const std::string& variant_filter = ctx.params.str("variant");
    const auto variant_on = [&](const char* name) {
      return variant_filter == "all" || variant_filter == name;
    };
    if (!variant_on("load") && !variant_on("token") &&
        !variant_on("tetris") && !variant_on("dchoices")) {
      throw std::invalid_argument(
          "--variant expects all, load, token, tetris or dchoices");
    }
    /// Token queues are memory-bound (one BallQueue per bin), so the
    /// token variant caps at 10^6 bins; the cap is reported, never
    /// silent.
    constexpr std::uint64_t kTokenCap = 1000000;

    // Worker counts: an explicit --threads measures exactly that;
    // otherwise 1, 4, and the machine maximum (deduplicated).
    std::vector<unsigned> thread_grid;
    const unsigned hw = ThreadPool::default_thread_count();
    if (ctx.threads() != 0) {
      thread_grid.push_back(ctx.threads());
    } else {
      for (const unsigned t : {1u, 4u, hw}) {
        if (std::find(thread_grid.begin(), thread_grid.end(), t) ==
            thread_grid.end()) {
          thread_grid.push_back(t);
        }
      }
    }

    ResultSet rs;
    Table& table = rs.add_table(
        "sharded_scaling",
        "rounds/sec and ns/ball: sequential vs sharded kernels, per "
        "variant",
        {"n", "variant", "backend", "threads", "rounds", "wall_s",
         "rounds_per_sec", "ns_per_ball", "speedup_vs_seq"});
    bool token_capped = false;
    std::vector<std::uint64_t> token_ns_emitted;

    for (const std::uint64_t n_requested : ns) {
      /// Times the three backends of one variant at one n.  make_seq /
      /// make_counter / make_sharded build the processes; the emit
      /// bookkeeping (rounds/sec, ns/ball, speedup vs this variant's
      /// seq row) is shared.
      const auto bench_variant = [&](const std::string& variant,
                                     std::uint64_t n64, auto make_seq,
                                     auto make_counter, auto make_sharded) {
        const std::uint64_t rounds =
            ctx.params.u64("rounds") != 0
                ? ctx.params.u64("rounds")
                : std::clamp<std::uint64_t>(64000000 / n64, 2, 32);
        const double balls =
            static_cast<double>(n64) * static_cast<double>(rounds);
        const auto emit = [&](const std::string& backend, unsigned threads,
                              double wall, double seq_wall) {
          table.row()
              .cell(n64)
              .cell(variant)
              .cell(backend)
              .cell(std::uint64_t{threads})
              .cell(rounds)
              .cell(wall, 4)
              .cell(static_cast<double>(rounds) / wall, 2)
              .cell(wall / balls * 1e9, 2)
              .cell(seq_wall / wall, 2);
        };
        double seq_wall = 0;
        {
          auto proc = make_seq();
          seq_wall = time_rounds(proc, rounds);
          emit("seq", 1, seq_wall, seq_wall);
        }
        {
          auto proc = make_counter();
          emit("seq-counter", 1, time_rounds(proc, rounds), seq_wall);
        }
        for (const unsigned threads : thread_grid) {
          auto proc = make_sharded(threads);
          emit("sharded", threads, time_rounds(proc, rounds), seq_wall);
        }
      };

      const auto n = static_cast<std::uint32_t>(n_requested);
      Rng cfg_rng(ctx.seed());
      const auto config = [&] {
        return make_config(InitialConfig::kOnePerBin, n, n, cfg_rng);
      };

      if (variant_on("load")) {
        bench_variant(
            "load", n_requested,
            [&] { return RepeatedBallsProcess(config(), Rng(ctx.seed(), 1)); },
            [&] { return par::SequentialCounterProcess(config(), ctx.seed()); },
            [&](unsigned threads) {
              return par::ShardedRepeatedBallsProcess(
                  config(), ctx.seed(),
                  par::ShardedOptions{threads, shard_size});
            });
      }
      if (variant_on("tetris")) {
        bench_variant(
            "tetris", n_requested,
            [&] { return TetrisProcess(config(), Rng(ctx.seed(), 2)); },
            [&] {
              return par::SequentialCounterTetrisProcess(config(),
                                                         ctx.seed());
            },
            [&](unsigned threads) {
              return par::ShardedTetrisProcess(
                  config(), ctx.seed(), 0,
                  par::ShardedOptions{threads, shard_size});
            });
      }
      if (variant_on("dchoices")) {
        bench_variant(
            "dchoices", n_requested,
            [&] {
              return RepeatedDChoicesProcess(config(), 2, Rng(ctx.seed(), 3));
            },
            [&] {
              return par::SequentialCounterDChoicesProcess(config(), 2,
                                                           ctx.seed());
            },
            [&](unsigned threads) {
              return par::ShardedDChoicesProcess(
                  config(), 2, ctx.seed(),
                  par::ShardedOptions{threads, shard_size});
            });
      }
      // Several requested n collapse onto the same capped token point;
      // measure each distinct token size once (duplicate keys would
      // shadow each other in bench_diff.py).
      const std::uint64_t tn64 = std::min(n_requested, kTokenCap);
      if (variant_on("token") && tn64 != n_requested) token_capped = true;
      const bool token_seen =
          std::find(token_ns_emitted.begin(), token_ns_emitted.end(),
                    tn64) != token_ns_emitted.end();
      if (variant_on("token") && !token_seen) {
        token_ns_emitted.push_back(tn64);
        const auto tn = static_cast<std::uint32_t>(tn64);
        TokenProcess::Options seq_options;
        seq_options.track_visits = false;
        bench_variant(
            "token", tn64,
            [&] {
              return TokenProcess(tn, identity_placement(tn), seq_options,
                                  Rng(ctx.seed(), 4));
            },
            [&] {
              return par::SequentialCounterTokenProcess(
                  tn, identity_placement(tn), ctx.seed());
            },
            [&](unsigned threads) {
              return par::ShardedTokenProcess(
                  tn, identity_placement(tn), ctx.seed(),
                  par::ShardedOptions{threads, shard_size});
            });
      }
    }

    rs.note("hardware threads: " + std::to_string(hw) +
            " (ThreadPool::default_thread_count; RBB_THREADS overrides)");
    rs.note("one-per-bin start: every bin releases each round, the "
            "max-throughput regime; ns_per_ball = wall / (rounds * n); "
            "speedup_vs_seq is against the same variant's seq row");
    if (token_capped) {
      rs.note("token rows capped at n = " + std::to_string(kTokenCap) +
              ": per-bin queues are memory-bound beyond that (the cap is "
              "applied per row, not silently to the sweep)");
    }
    rs.note("sharded trajectories are bit-identical across the threads "
            "column by construction (tests/par/); timings, not results, "
            "vary with the worker count");
    return rs;
  };
  registry.add(std::move(e));
}

}  // namespace rbb::runner
