// paper_walkthrough: Theorem 1's proof, executed step by step.
//
// The paper's argument has three moves (Sect. 3.1):
//   (i)   after round 1 there are always >= n/4 empty bins (Lemmas 1-2),
//   (ii)  given (i), couple the process with Tetris so Tetris's loads
//         dominate (Lemma 3),
//   (iii) Tetris has i.i.d. arrivals, so its per-bin load is the eq.-(4)
//         chain with drift -1/4, giving O(log n) maxima (Lemmas 5-6) and
//         5n-round drains (Lemma 4) -- which transfer back through the
//         coupling to the original process.
//
// This example runs each move live and prints the quantities the lemmas
// bound, ending with the Theorem-1 conclusions.
//
//   ./examples/paper_walkthrough [--n 1024] [--seed 4]
#include <cstdlib>
#include <iostream>

#include "coupling/coupling.hpp"
#include "core/config.hpp"
#include "core/process.hpp"
#include "support/bounds.hpp"
#include "support/cli.hpp"
#include "tetris/zchain.hpp"

int main(int argc, char** argv) {
  using namespace rbb;
  Cli cli("paper_walkthrough: Theorem 1, executed lemma by lemma");
  cli.add_u64("n", 1024, "balls and bins");
  cli.add_u64("seed", 4, "RNG seed");
  if (!cli.parse(argc, argv)) return EXIT_SUCCESS;

  const auto n = static_cast<std::uint32_t>(cli.u64("n"));
  const std::uint64_t seed = cli.u64("seed");
  const std::uint64_t window = 10ull * n;
  std::cout << "Theorem 1 walkthrough, n = " << n << ", window = " << window
            << " rounds, log2 n = " << log2n(n) << "\n\n";

  // -- Step (i): the empty-bins invariant (Lemmas 1-2). --------------------
  Rng rng(seed);
  RepeatedBallsProcess process(
      make_config(InitialConfig::kOnePerBin, n, n, rng), rng);
  std::uint32_t min_empty = n;
  for (std::uint64_t t = 0; t < window; ++t) {
    min_empty = std::min(min_empty, process.step().empty_bins);
  }
  std::cout << "(i)  Lemmas 1-2: min empty bins over " << window
            << " rounds = " << min_empty << " = "
            << static_cast<double>(min_empty) / n << " n"
            << "   [claim: >= n/4 = " << n / 4 << " w.h.p.]  "
            << (min_empty >= n / 4 ? "HOLDS" : "VIOLATED") << "\n";

  // -- Step (ii): the coupling (Lemma 3). -----------------------------------
  // Start both processes from the current (legitimate, >= n/4 empty)
  // configuration of the warmed-up original process.
  CoupledProcesses coupled(process.loads(), Rng(seed, 0xc0));
  coupled.run(window);
  std::cout << "(ii) Lemma 3: over " << window << " coupled rounds -- "
            << "case-(ii) rounds: " << coupled.case_two_rounds()
            << ", domination violations: " << coupled.violation_rounds()
            << "   [claim: both 0 w.h.p.]  "
            << (coupled.violation_rounds() == 0 ? "HOLDS" : "VIOLATED")
            << "\n     original max " << coupled.original_running_max()
            << "  <=  tetris max " << coupled.tetris_running_max() << "\n";

  // -- Step (iii): the Z-chain (Lemmas 5-6). --------------------------------
  Rng zrng(seed, 0x2e);
  const std::uint64_t k = static_cast<std::uint64_t>(log2n(n));
  constexpr int kTrials = 20000;
  std::uint64_t worst_tau = 0;
  double mean_tau = 0.0;
  for (int i = 0; i < kTrials; ++i) {
    const std::uint64_t tau = sample_absorption_time(n, k, 1u << 20, zrng);
    worst_tau = std::max(worst_tau, tau);
    mean_tau += static_cast<double>(tau);
  }
  mean_tau /= kTrials;
  std::cout << "(iii) Lemma 5: Z-chain from k = log2 n = " << k
            << ": E[tau] = " << mean_tau << " (drift -1/4 => 4k = " << 4 * k
            << "), worst of " << kTrials << " trials = " << worst_tau
            << "   [claim: P(tau > t) <= e^{-t/144} for t >= 8k]\n";

  // -- Conclusion: Theorem 1 on the original process. -----------------------
  // (a) stability: the window max we already have from step (ii);
  const double ratio =
      static_cast<double>(coupled.original_running_max()) / log2n(n);
  std::cout << "\n=> Theorem 1(a): original-process window max "
            << coupled.original_running_max() << " = " << ratio
            << " * log2 n   [O(log n): HOLDS]\n";

  // (b) self-stabilization: from all-in-one, rounds to legitimacy.
  Rng rng2(seed, 0xab);
  RepeatedBallsProcess worst(
      make_config(InitialConfig::kAllInOne, n, n, rng2), rng2);
  std::uint64_t t = 0;
  while (!worst.is_legitimate() && t < 64ull * n) {
    worst.step();
    ++t;
  }
  std::cout << "=> Theorem 1(b): from all-in-one, legitimate after " << t
            << " rounds = " << static_cast<double>(t) / n
            << " n   [O(n): HOLDS]\n";
  return EXIT_SUCCESS;
}
