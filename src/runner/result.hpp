// Structured experiment results and their machine-readable renderings.
//
// Every registry experiment returns a ResultSet: one or more titled
// Tables plus free-form notes (fit lines, caveats).  The runner wraps it
// in RunMeta -- which experiment, which parameters, seed, scale, git
// revision, wall time -- and serializes the pair to one of three formats:
//
//   table  the human markdown tables the bench binaries always printed,
//   json   a schema-stable document ("rbb.result.v1", fixed key order)
//          for sweep tooling and trajectory tracking (BENCH_*.json),
//   csv    per-table RFC-4180-ish CSV with `#`-prefixed metadata lines.
//
// Serialization is a pure function of (meta, results), so the golden
// tests in tests/runner/ pin the byte-exact output.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "runner/params.hpp"
#include "support/table.hpp"

namespace rbb::runner {

/// Result payload of one experiment run: titled tables plus notes.
class ResultSet {
 public:
  struct Entry {
    std::string id;     // stable table id, e.g. "E1_stability"
    std::string title;  // one-line claim the table demonstrates
    Table data;
    /// Column names that are context, not measurements: consumers such
    /// as tools/bench_diff.py must never gate on them.  Serialized as
    /// the table's "informational" array when non-empty.
    std::vector<std::string> informational;
  };

  /// Starts a new table; the returned reference stays valid across later
  /// add_table calls (entries live in a deque).
  Table& add_table(std::string id, std::string title,
                   std::vector<std::string> headers);

  /// add_table declaring a subset of `headers` informational (carried
  /// into the JSON so downstream tooling need not hardcode names).
  Table& add_table(std::string id, std::string title,
                   std::vector<std::string> headers,
                   std::vector<std::string> informational);

  /// Appends a free-form note (fit summaries, analytic context).
  void note(std::string text);

  [[nodiscard]] const std::deque<Entry>& tables() const { return tables_; }
  [[nodiscard]] const std::vector<std::string>& notes() const {
    return notes_;
  }

 private:
  std::deque<Entry> tables_;
  std::vector<std::string> notes_;
};

/// Provenance attached to every serialized run.
struct RunMeta {
  struct Param {
    std::string name;
    ParamSpec::Type type = ParamSpec::Type::kString;
    std::string value;  // canonical text
  };

  /// The run's honest thread accounting (ROADMAP item 5), emitted in
  /// every serialization so perf rows carry the hardware they came
  /// from: tools/bench_diff.py refuses to gate rows whose effective
  /// parallelism differs between baselines.
  struct Parallelism {
    std::uint32_t hardware_concurrency = 0;  // std::thread value, 0 unknown
    std::uint32_t threads_requested = 0;     // the --threads parameter
    std::uint32_t runnable_threads = 0;      // threads that can run tasks
    /// The --repeat request: the run function executed this many times
    /// and the serialized results/wall time are the fastest execution
    /// (best-of-K timing discipline for perf rows).
    std::uint64_t repeat = 1;
  };

  /// One scraped telemetry value (name as serialized).
  struct Metric {
    std::string name;
    std::uint64_t value = 0;
  };

  /// The optional --metrics block: counter totals and per-phase ns from
  /// the obs registry.  Additive -- absent (present == false) the JSON
  /// document is byte-identical to the pre-telemetry schema.
  struct MetricsBlock {
    bool present = false;
    std::vector<Metric> counters;   // catalogue order
    std::vector<Metric> phase_ns;   // catalogue order
    double barrier_wait_fraction = 0;
    /// Share of epoch-synchronized time the pipelined round loop spent
    /// doing overlapped work instead of spinning (obs/metrics.hpp);
    /// exactly 0 for barriered runs.
    double pipeline_fill_fraction = 0;
    std::uint32_t effective_parallelism = 0;  // min(runnable, hardware)
  };

  std::string experiment;  // registry name, e.g. "stability"
  std::string claim;       // DESIGN.md E-number ("E1"), empty for extras
  std::string title;       // one-line experiment title
  std::string scale;       // smoke | default | paper
  std::uint64_t seed = 0;
  std::vector<Param> params;  // declaration order
  std::string git_rev;
  double wall_seconds = 0;
  Parallelism parallelism;
  MetricsBlock metrics;
};

/// Fills meta.params (and meta.seed) from parsed values, in spec order.
void fill_meta_params(RunMeta& meta, const ParamValues& values);

/// The "rbb.result.v1" JSON document (two-space indent, fixed key order,
/// numeric-looking cells emitted as JSON numbers).
[[nodiscard]] std::string to_json(const RunMeta& meta, const ResultSet& rs);

/// CSV rendering: `#`-prefixed metadata lines, then each table (blank
/// line separated), then `# note:` lines.
[[nodiscard]] std::string to_csv(const RunMeta& meta, const ResultSet& rs);

/// The human rendering the bench binaries print: a `===` banner and a
/// markdown table per entry, then the notes.
[[nodiscard]] std::string to_text(const RunMeta& meta, const ResultSet& rs);

/// True if `text` is a valid JSON number literal (the rule deciding
/// whether a table cell serializes as a number or a string).
[[nodiscard]] bool is_json_number(const std::string& text);

/// JSON string escaping (quotes not included).
[[nodiscard]] std::string json_escape(const std::string& text);

}  // namespace rbb::runner
