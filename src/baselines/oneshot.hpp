// One-shot balls-into-bins baselines (paper Sect. 1.3 / Sect. 5).
//
// The classical single-round process: m balls thrown u.a.r. into n bins
// has maximum load Theta(log n / log log n) w.h.p. for m = n -- the lower
// bound that also applies to every round of the repeated process, and the
// quantity the Sect. 5 tightness conjecture compares against.  The
// d-choices variants (Azar et al. [19]; Voecking's Always-Go-Left [28])
// are included as the standard allocation-strategy comparators and feed
// the repeated-d-choices extension (E15).
#pragma once

#include <cstdint>
#include <vector>

#include "support/rng.hpp"

namespace rbb {

/// Occupancy of m u.a.r. balls in n bins (the one-shot configuration).
[[nodiscard]] std::vector<std::uint32_t> oneshot_occupancy(std::uint64_t balls,
                                                           std::uint32_t bins,
                                                           Rng& rng);

/// Maximum load of one one-shot experiment.
[[nodiscard]] std::uint32_t oneshot_max_load(std::uint64_t balls,
                                             std::uint32_t bins, Rng& rng);

/// Greedy[d] (Azar et al.): balls arrive sequentially; each samples d bins
/// u.a.r. (with replacement) and joins the least loaded (ties: the first
/// sampled).  d = 1 degenerates to the one-shot process.  Returns the
/// final occupancy.
[[nodiscard]] std::vector<std::uint32_t> dchoice_occupancy(
    std::uint64_t balls, std::uint32_t bins, std::uint32_t d, Rng& rng);

[[nodiscard]] std::uint32_t dchoice_max_load(std::uint64_t balls,
                                             std::uint32_t bins,
                                             std::uint32_t d, Rng& rng);

/// Voecking's Always-Go-Left: bins are split into d groups; each ball
/// samples one bin per group and joins the least loaded, breaking ties
/// toward the leftmost group.  Requires d >= 2 and d <= bins.
[[nodiscard]] std::vector<std::uint32_t> dleft_occupancy(std::uint64_t balls,
                                                         std::uint32_t bins,
                                                         std::uint32_t d,
                                                         Rng& rng);

[[nodiscard]] std::uint32_t dleft_max_load(std::uint64_t balls,
                                           std::uint32_t bins, std::uint32_t d,
                                           Rng& rng);

}  // namespace rbb
