#include "support/cli.hpp"

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <stdexcept>

namespace rbb {
namespace {

const char* kind_name(int kind) {
  switch (kind) {
    case 0: return "uint";
    case 1: return "float";
    case 2: return "string";
    default: return "flag";
  }
}

}  // namespace

Cli::Cli(std::string program_description)
    : description_(std::move(program_description)) {}

void Cli::add_u64(const std::string& name, std::uint64_t default_value,
                  const std::string& help) {
  options_[name] = Option{Kind::kU64, help, std::to_string(default_value)};
  order_.push_back(name);
}

void Cli::add_double(const std::string& name, double default_value,
                     const std::string& help) {
  std::ostringstream v;
  v << default_value;
  options_[name] = Option{Kind::kDouble, help, v.str()};
  order_.push_back(name);
}

void Cli::add_string(const std::string& name, std::string default_value,
                     const std::string& help) {
  options_[name] = Option{Kind::kString, help, std::move(default_value)};
  order_.push_back(name);
}

void Cli::add_flag(const std::string& name, const std::string& help) {
  options_[name] = Option{Kind::kFlag, help, "0"};
  order_.push_back(name);
}

bool Cli::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::cout << usage(argv[0]);
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      std::cerr << "unexpected argument: " << arg << '\n' << usage(argv[0]);
      return false;
    }
    arg.erase(0, 2);
    std::string value;
    bool have_value = false;
    if (const auto eq = arg.find('='); eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg.erase(eq);
      have_value = true;
    }
    const auto it = options_.find(arg);
    if (it == options_.end()) {
      std::cerr << "unknown option: --" << arg << '\n' << usage(argv[0]);
      return false;
    }
    if (it->second.kind == Kind::kFlag) {
      it->second.value = have_value ? value : "1";
      continue;
    }
    if (!have_value) {
      if (i + 1 >= argc) {
        std::cerr << "option --" << arg << " needs a value\n";
        return false;
      }
      value = argv[++i];
    }
    it->second.value = value;
  }
  return true;
}

Cli::Option& Cli::find(const std::string& name, Kind kind) {
  const auto it = options_.find(name);
  if (it == options_.end() || it->second.kind != kind) {
    throw std::logic_error("Cli: option not registered with this type: " +
                           name);
  }
  return it->second;
}

const Cli::Option& Cli::find(const std::string& name, Kind kind) const {
  return const_cast<Cli*>(this)->find(name, kind);
}

std::uint64_t Cli::u64(const std::string& name) const {
  return std::strtoull(find(name, Kind::kU64).value.c_str(), nullptr, 10);
}

double Cli::f64(const std::string& name) const {
  return std::strtod(find(name, Kind::kDouble).value.c_str(), nullptr);
}

const std::string& Cli::str(const std::string& name) const {
  return find(name, Kind::kString).value;
}

bool Cli::flag(const std::string& name) const {
  const std::string& v = find(name, Kind::kFlag).value;
  return v != "0" && v != "false" && !v.empty();
}

std::string Cli::usage(const std::string& argv0) const {
  std::ostringstream out;
  out << description_ << "\n\nusage: " << argv0 << " [options]\n\noptions:\n";
  for (const auto& name : order_) {
    const Option& opt = options_.at(name);
    out << "  --" << name << " <" << kind_name(static_cast<int>(opt.kind))
        << ">  " << opt.help << " (default: " << opt.value << ")\n";
  }
  out << "  --help  print this message\n";
  return out.str();
}

}  // namespace rbb
