// The Process interface of the simulation engine (DESIGN.md Sect. 2).
//
// Every process variant in this repository -- the load-only kernel, the
// identity-tracking token process, Tetris, leaky bins, d-choices,
// independent walks and Israeli-Jalfon -- advances in synchronous rounds
// and exposes a load-shaped view of its state.  The engine drives them
// through a small set of free-function customization points instead of a
// virtual base class, so that Engine<P>::run() compiles down to the same
// loop the hand-rolled per-process drivers used to contain (the parity
// regression test in tests/engine/ pins this down bit-for-bit).
//
// Generic overloads cover any type with the conventional member surface
// (step / round / bin_count / max_load / empty_bins / loads /
// check_invariants); the token-carrying variants that lack a LoadConfig
// (TokenProcess, IsraeliJalfonProcess) get explicit overloads below.
#pragma once

#include <concepts>
#include <cstdint>

#include "core/config.hpp"
#include "core/token_process.hpp"
#include "selfstab/israeli_jalfon.hpp"

namespace rbb {

// --- step -------------------------------------------------------------------

/// \brief Executes one synchronous round of the process.
///
/// Customization point: the generic overload forwards to a `step()`
/// member; a process without that member provides its own overload
/// (found by ADL) instead.  Return values (per-process round stats) are
/// intentionally discarded: observers read end-of-round state through
/// the customization points below, which is equivalent and keeps the
/// interface uniform.
///
/// \tparam P any type with a `step()` member (or an overload of its own)
template <typename P>
  requires requires(P& p) { p.step(); }
void engine_step(P& p) {
  p.step();
}

// --- identity ---------------------------------------------------------------

/// \brief Number of bins (equivalently: nodes, stations, queues).
///
/// Constant over a run; observers use it to normalize per-bin metrics
/// (e.g. the empty-bin *fraction*).
template <typename P>
  requires requires(const P& p) {
    { p.bin_count() } -> std::convertible_to<std::uint32_t>;
  }
[[nodiscard]] std::uint32_t engine_bin_count(const P& p) {
  return p.bin_count();
}

/// Israeli-Jalfon has nodes rather than bins.
[[nodiscard]] inline std::uint32_t engine_bin_count(
    const IsraeliJalfonProcess& p) {
  return p.node_count();
}

/// \brief Rounds executed since the process was constructed.
///
/// Monotone; the engine tracks its own per-run round count, so this is
/// only consulted by observers that want absolute process time.
template <typename P>
  requires requires(const P& p) {
    { p.round() } -> std::convertible_to<std::uint64_t>;
  }
[[nodiscard]] std::uint64_t engine_round(const P& p) {
  return p.round();
}

// --- load-shaped state ------------------------------------------------------

/// \brief Maximum load M(q) of the current configuration.
///
/// The paper's central observable (legitimacy is M(q) <= beta log2 n).
/// Expected O(1) for processes with incremental bookkeeping (the
/// load-only kernel, Tetris); may be O(n) for token-carrying variants --
/// which is why observers reach it through the lazy, memoized
/// RoundContext rather than calling it unconditionally.
template <typename P>
  requires requires(const P& p) {
    { p.max_load() } -> std::convertible_to<std::uint32_t>;
  }
[[nodiscard]] std::uint32_t engine_max_load(const P& p) {
  return p.max_load();
}

/// Israeli-Jalfon state is a token-presence indicator per node (merging
/// caps every "load" at 1), so the maximum load is 1 whenever any token
/// survives -- which the constructor guarantees.
[[nodiscard]] inline std::uint32_t engine_max_load(
    const IsraeliJalfonProcess& p) {
  return p.token_count() > 0 ? 1u : 0u;
}

/// \brief Number of empty bins in the current configuration.
///
/// Drives the Lemma-1 floor observable (empty fraction >= 1/4).  Same
/// cost caveat as engine_max_load.
template <typename P>
  requires requires(const P& p) {
    { p.empty_bins() } -> std::convertible_to<std::uint32_t>;
  }
[[nodiscard]] std::uint32_t engine_empty_bins(const P& p) {
  return p.empty_bins();
}

[[nodiscard]] inline std::uint32_t engine_empty_bins(
    const IsraeliJalfonProcess& p) {
  return p.node_count() - p.token_count();
}

/// Snapshot of the per-bin load vector.  Returns by value: the engine
/// only calls this off the hot path (sampling observers, parity checks).
template <typename P>
  requires requires(const P& p) {
    { p.loads() } -> std::convertible_to<LoadConfig>;
  }
[[nodiscard]] LoadConfig engine_loads(const P& p) {
  return p.loads();
}

[[nodiscard]] inline LoadConfig engine_loads(const TokenProcess& p) {
  LoadConfig loads(p.bin_count(), 0);
  for (std::uint32_t u = 0; u < p.bin_count(); ++u) loads[u] = p.load(u);
  return loads;
}

[[nodiscard]] inline LoadConfig engine_loads(const IsraeliJalfonProcess& p) {
  const auto& tokens = p.tokens();
  return {tokens.begin(), tokens.end()};
}

// --- invariants -------------------------------------------------------------

/// Revalidates the process's incremental bookkeeping (throws
/// std::logic_error on drift); a no-op for processes without a checker.
template <typename P>
void engine_check_invariants(const P& p) {
  if constexpr (requires { p.check_invariants(); }) {
    p.check_invariants();
  }
}

// --- the concept ------------------------------------------------------------

/// \brief A simulatable process: anything the Engine's round loop can
/// drive.
///
/// This names the full contract that was previously only prose in
/// DESIGN.md Sect. 2.  To plug a new process variant (a sharded
/// backend, an async queue, a new arrival law) into every driver,
/// observer, and fault schedule in the repository, provide:
///
///   * `engine_step(p)`        -- advance one synchronous round,
///   * `engine_bin_count(cp)`  -- number of bins/nodes (constant),
///   * `engine_round(cp)`      -- rounds since construction,
///   * `engine_max_load(cp)`   -- M(q) of the current configuration,
///   * `engine_empty_bins(cp)` -- empty-bin count,
///   * `engine_loads(cp)`      -- per-bin load snapshot (off hot path),
///
/// either via the conventional member surface (the generic overloads
/// above pick it up automatically) or as free-function overloads found
/// by ADL.  Optionally add `check_invariants()` (revalidated by
/// engine_check_invariants under fuzzing) and the members specific
/// stopping rules probe (`all_emptied_once()`, `all_covered()`, ...).
/// Randomness must come from the process's own Rng stream so that fault
/// plans (which draw from a separate stream) never perturb
/// trajectories -- the determinism contract design choice D5 and the
/// parity tests rely on.
template <typename P>
concept SimProcess = requires(P& p, const P& cp) {
  engine_step(p);
  { engine_bin_count(cp) } -> std::convertible_to<std::uint32_t>;
  { engine_round(cp) } -> std::convertible_to<std::uint64_t>;
  { engine_max_load(cp) } -> std::convertible_to<std::uint32_t>;
  { engine_empty_bins(cp) } -> std::convertible_to<std::uint32_t>;
  { engine_loads(cp) } -> std::convertible_to<LoadConfig>;
};

}  // namespace rbb
