// E14 -- general graphs (open question).  Back-compat shim: the experiment now lives in the
// registry (src/runner/experiments/graphs.cpp); this binary behaves like
// `rbb run graphs` with table output, honoring RBB_BENCH_SCALE and
// RBB_CSV_DIR as it always did.
#include "runner/legacy.hpp"

int main(int argc, char** argv) {
  return rbb::runner::legacy_bench_main("graphs", argc, argv);
}
