// Tests for the experiment drivers: parameter validation, result-shape
// sanity, determinism, and small-scale agreement with the paper's claims.
#include "analysis/experiments.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>

#include "support/bounds.hpp"

namespace rbb {
namespace {

TEST(ForEachTrial, RunsAllTrialsWithDistinctStreams) {
  std::vector<std::uint64_t> first_draw(16, 0);
  for_each_trial(16, 7, [&](std::uint32_t trial, Rng& rng) {
    first_draw[trial] = rng();
  });
  std::set<std::uint64_t> unique(first_draw.begin(), first_draw.end());
  EXPECT_EQ(unique.size(), 16u);
}

TEST(Stability, ValidatesParams) {
  StabilityParams p;
  p.n = 1;
  p.rounds = 10;
  p.trials = 1;
  EXPECT_THROW((void)run_stability(p), std::invalid_argument);
  p.n = 16;
  p.trials = 0;
  EXPECT_THROW((void)run_stability(p), std::invalid_argument);
}

TEST(Stability, RepeatedProcessStaysLegitimate) {
  StabilityParams p;
  p.n = 256;
  p.rounds = 2000;
  p.trials = 4;
  p.seed = 3;
  const StabilityResult r = run_stability(p);
  EXPECT_EQ(r.window_max.count(), 4u);
  EXPECT_GT(r.window_max.mean(), 1.0);
  EXPECT_EQ(r.legit_window_fraction, 1.0);
  // Empty fraction floor: Lemma 1 predicts >= 1/4 after round 1.
  EXPECT_GT(r.min_empty_fraction.min(), 0.25);
}

TEST(Stability, DeterministicAcrossCalls) {
  StabilityParams p;
  p.n = 64;
  p.rounds = 500;
  p.trials = 3;
  p.seed = 11;
  const StabilityResult a = run_stability(p);
  const StabilityResult b = run_stability(p);
  EXPECT_EQ(a.window_max.mean(), b.window_max.mean());
  EXPECT_EQ(a.overall_max, b.overall_max);
}

TEST(Stability, TetrisVariantRuns) {
  StabilityParams p;
  p.n = 128;
  p.rounds = 1000;
  p.trials = 2;
  p.process = StabilityProcess::kTetris;
  const StabilityResult r = run_stability(p);
  EXPECT_GT(r.window_max.mean(), 0.0);
}

TEST(Stability, DChoicesBeatsSingleChoice) {
  StabilityParams p;
  p.n = 512;
  p.rounds = 2000;
  p.trials = 2;
  const StabilityResult d1 = run_stability(p);
  p.process = StabilityProcess::kRepeatedDChoice;
  p.choices = 2;
  const StabilityResult d2 = run_stability(p);
  EXPECT_LT(d2.window_max.mean(), d1.window_max.mean());
}

TEST(Stability, IndependentWalksRun) {
  StabilityParams p;
  p.n = 128;
  p.rounds = 300;
  p.trials = 2;
  p.process = StabilityProcess::kIndependent;
  const StabilityResult r = run_stability(p);
  EXPECT_GT(r.window_max.mean(), 0.0);
  // Unconstrained walks have ~1/e empty fraction, above 1/4.
  EXPECT_GT(r.min_empty_fraction.mean(), 0.25);
}

TEST(Stability, GraphVariantRuns) {
  Rng rng(1);
  const Graph g = make_cycle(64);
  StabilityParams p;
  p.n = 64;
  p.rounds = 500;
  p.trials = 2;
  p.graph = &g;
  const StabilityResult r = run_stability(p);
  EXPECT_GT(r.window_max.mean(), 0.0);
}

TEST(Convergence, AllInOneConvergesLinearly) {
  ConvergenceParams p;
  p.n = 256;
  p.trials = 4;
  const ConvergenceResult r = run_convergence(p);
  EXPECT_EQ(r.timeouts, 0u);
  EXPECT_EQ(r.rounds_to_legitimate.count(), 4u);
  // From all-in-one the big bin drains 1/round: convergence ~ n - beta log n.
  EXPECT_GT(r.normalized.mean(), 0.5);
  EXPECT_LT(r.normalized.mean(), 1.5);
}

TEST(Convergence, LegitimateStartConvergesImmediately) {
  ConvergenceParams p;
  p.n = 64;
  p.trials = 2;
  p.start = InitialConfig::kOnePerBin;
  const ConvergenceResult r = run_convergence(p);
  EXPECT_EQ(r.rounds_to_legitimate.max(), 0.0);
}

TEST(EmptyBins, QuarterFloorHolds) {
  EmptyBinsParams p;
  p.n = 256;
  p.rounds = 2000;
  p.trials = 4;
  const EmptyBinsResult r = run_empty_bins(p);
  EXPECT_EQ(r.below_quarter, 0u);
  // Equilibrium empty fraction is ~0.33-0.37 for the constrained process.
  EXPECT_GT(r.mean_fraction.mean(), 0.28);
  EXPECT_LT(r.mean_fraction.mean(), 0.45);
}

TEST(Coupling, DominationAtSmallScale) {
  CouplingParams p;
  p.n = 128;
  p.rounds = 1000;
  p.trials = 4;
  const CouplingResult r = run_coupling(p);
  EXPECT_EQ(r.total_violation_rounds, 0u);
  EXPECT_EQ(r.total_case_two_rounds, 0u);
  EXPECT_EQ(r.trials_dominated_throughout, 4u);
  EXPECT_GE(r.tetris_window_max.mean(), r.original_window_max.mean());
}

TEST(TetrisDrain, WithinFiveN) {
  TetrisDrainParams p;
  p.n = 256;
  p.trials = 4;
  const TetrisDrainResult r = run_tetris_drain(p);
  EXPECT_EQ(r.timeouts, 0u);
  EXPECT_EQ(r.exceeded_5n, 0u);
  EXPECT_LT(r.normalized.mean(), 5.0);
  EXPECT_GT(r.normalized.mean(), 0.5);
}

TEST(ZChainTail, BelowLemma5Bound) {
  ZChainTailParams p;
  p.n = 256;
  p.start = 4;
  p.ts = {32, 64, 128};
  p.trials = 2000;
  const ZChainTailResult r = run_zchain_tail(p);
  ASSERT_EQ(r.empirical_tail.size(), 3u);
  // t = 32 >= 8k: Lemma 5 applies.  Empirical tail is far below the bound.
  EXPECT_LE(r.empirical_tail[0], std::exp(-32.0 / 144.0));
  // Tails are monotone decreasing.
  EXPECT_GE(r.empirical_tail[0], r.empirical_tail[1]);
  EXPECT_GE(r.empirical_tail[1], r.empirical_tail[2]);
}

TEST(ZChainTail, ValidatesSortedTs) {
  ZChainTailParams p;
  p.n = 64;
  p.start = 2;
  p.ts = {100, 50};
  p.trials = 10;
  EXPECT_THROW((void)run_zchain_tail(p), std::invalid_argument);
}

TEST(CoverTime, ParallelSlowerThanSingleByLogFactor) {
  CoverTimeParams p;
  p.n = 128;
  p.trials = 3;
  const CoverTimeResult r = run_cover_time(p);
  EXPECT_EQ(r.timeouts, 0u);
  // n tokens need longer than one walker...
  EXPECT_GT(r.cover_time.mean(), r.single_walk.mean());
  // ...but only by roughly a log factor (generous band).
  EXPECT_LT(r.cover_time.mean(), 30.0 * r.single_walk.mean());
}

TEST(NegAssoc, MatchesAppendixBExactValues) {
  const NegAssocResult r = run_negative_association(400000, 17);
  EXPECT_EQ(r.trials, 400000u);
  EXPECT_NEAR(r.p_x1_zero, 0.25, 0.005);
  EXPECT_NEAR(r.p_x2_zero, 0.375, 0.005);
  EXPECT_NEAR(r.p_both_zero, 0.125, 0.005);
  // The counterexample inequality: P(00) > P(0)P(0).
  EXPECT_GT(r.p_both_zero, r.p_x1_zero * r.p_x2_zero);
}

TEST(SqrtT, RunningMaxFlattens) {
  SqrtTParams p;
  p.n = 256;
  p.checkpoints = {16, 256, 4096};
  p.trials = 3;
  const SqrtTResult r = run_sqrt_t(p);
  ASSERT_EQ(r.running_max_mean.size(), 3u);
  // Monotone (running max) but far below sqrt(t) at the last checkpoint.
  EXPECT_LE(r.running_max_mean[0], r.running_max_mean[1]);
  EXPECT_LE(r.running_max_mean[1], r.running_max_mean[2]);
  EXPECT_LT(r.running_max_mean[2], std::sqrt(4096.0));
}

TEST(OneShot, BaselinesRun) {
  OneShotParams p;
  p.n = 1024;
  p.trials = 10;
  const OneShotResult plain = run_oneshot(p);
  p.d = 2;
  const OneShotResult greedy2 = run_oneshot(p);
  EXPECT_LT(greedy2.max_load.mean(), plain.max_load.mean());
  p.always_go_left = true;
  const OneShotResult dleft = run_oneshot(p);
  EXPECT_LT(dleft.max_load.mean(), plain.max_load.mean());
}

TEST(Leaky, SubcriticalStationary) {
  LeakyParams p;
  p.n = 128;
  p.lambda = 0.5;
  p.burn_in = 300;
  p.rounds = 500;
  p.trials = 3;
  const LeakyResult r = run_leaky(p);
  EXPECT_LT(r.mean_total_per_bin.mean(), 3.0);
  EXPECT_GT(r.mean_empty_fraction.mean(), 0.25);
}

TEST(Jackson, DriverRuns) {
  JacksonParams p;
  p.n = 64;
  p.trials = 3;
  const JacksonResult r = run_jackson(p);
  EXPECT_GT(r.running_max.mean(), 0.0);
  EXPECT_GE(r.running_max.mean(), r.final_max.mean());
  EXPECT_GT(r.events_per_unit_time.mean(), 0.0);
}

TEST(Delays, FifoMaxDelayNearLogN) {
  DelayParams p;
  p.n = 256;
  p.trials = 3;
  const DelayResult r = run_delays(p);
  EXPECT_GT(r.delays.total(), 0u);
  // Typical release waits under a round in equilibrium...
  EXPECT_LT(r.mean_delay, 2.0);
  EXPECT_EQ(r.p50, 0u);
  // ...and the worst wait is O(log n): generous envelope 4 log2 n.
  EXPECT_LE(r.max_delay.mean(), 4.0 * log2n(p.n));
  EXPECT_LE(r.p99, r.p999);
}

TEST(Delays, LifoTailWorseThanFifo) {
  DelayParams p;
  p.n = 256;
  p.trials = 3;
  const DelayResult fifo = run_delays(p);
  p.policy = QueuePolicy::kLifo;
  const DelayResult lifo = run_delays(p);
  EXPECT_GT(lifo.max_delay.mean(), fifo.max_delay.mean());
}

TEST(LoadProfile, RepeatedProcessTailDecays) {
  LoadProfileParams p;
  p.n = 256;
  p.trials = 2;
  const LoadProfileResult r = run_load_profile(p);
  ASSERT_GE(r.tail.size(), 3u);
  EXPECT_NEAR(r.tail[0], 1.0, 1e-12);  // every bin has load >= 0
  // Empty fraction ~0.41 in equilibrium => P(load >= 1) ~ 0.59.
  EXPECT_NEAR(r.tail[1], 0.59, 0.08);
  // Geometric-ish decay.
  EXPECT_LT(r.tail[2], r.tail[1]);
  if (r.tail.size() > 4) {
    EXPECT_LT(r.tail[4], 0.1);
  }
}

TEST(LoadProfile, AllProcessesProduceProfiles) {
  for (const auto process :
       {ProfileProcess::kRepeated, ProfileProcess::kIndependent,
        ProfileProcess::kTetris, ProfileProcess::kJackson}) {
    LoadProfileParams p;
    p.n = 64;
    p.process = process;
    p.trials = 2;
    p.samples = 10;
    const LoadProfileResult r = run_load_profile(p);
    EXPECT_GT(r.profile.total(), 0u);
    EXPECT_NEAR(r.tail[0], 1.0, 1e-12);
  }
}

TEST(Mixing, EquilibriumStartMixesFast) {
  MixingParams p;
  p.n = 64;
  p.checkpoints = {1, 4, 16};
  p.trials = 8000;
  const MixingResult r = run_mixing(p);
  ASSERT_EQ(r.tv_from_uniform.size(), 3u);
  EXPECT_GT(r.noise_floor, 0.0);
  // By t = 16 the TV sits at the sampling noise floor.
  EXPECT_LT(r.tv_from_uniform[2], 2.0 * r.noise_floor);
}

TEST(Mixing, PileStartFreezesTheBuriedToken) {
  MixingParams p;
  p.n = 64;
  p.placement = InitialConfig::kAllInOne;
  p.checkpoints = {8, 32, 128};
  p.trials = 3000;
  const MixingResult r = run_mixing(p);
  // Under FIFO the tracked token cannot move before round n-1 = 63.
  EXPECT_GT(r.tv_from_uniform[0], 0.9);
  EXPECT_GT(r.tv_from_uniform[1], 0.9);
  // Well after the pile drains, back to (near) the noise floor.
  EXPECT_LT(r.tv_from_uniform[2], 4.0 * r.noise_floor);
}

TEST(Progress, FifoTokensAllMakeProgress) {
  ProgressParams p;
  p.n = 128;
  p.trials = 3;
  const ProgressResult r = run_progress(p);
  EXPECT_GT(r.min_progress.min(), 0.0);
  // Mean progress per round ~ non-empty fraction ~ 0.6-0.7.
  EXPECT_GT(r.mean_progress.mean(), 0.5);
  EXPECT_LT(r.mean_progress.mean(), 0.8);
  // Sect. 4: min progress * log2 n / t is bounded below by a constant.
  EXPECT_GT(r.min_progress_normalized.mean(), 0.5);
}

}  // namespace
}  // namespace rbb
