// Least-squares scaling-law fits for the experiment tables.
//
// The paper's claims are growth laws (convergence = O(n), cover time =
// O(n log^2 n), max load = O(log n)); the benches quantify them by
// fitting exponents over the measured sweeps.  fit_linear is ordinary
// least squares; fit_power_law fits y = C * x^a by OLS on (log x, log y).
#pragma once

#include <cstdint>
#include <span>

namespace rbb {

/// y = intercept + slope * x, with the coefficient of determination.
struct LinearFit {
  double slope = 0;
  double intercept = 0;
  double r_squared = 0;
};

/// Ordinary least squares over (x, y) pairs.  Requires >= 2 points and at
/// least two distinct x values.
[[nodiscard]] LinearFit fit_linear(std::span<const double> x,
                                   std::span<const double> y);

/// y = C * x^exponent, fitted on the log-log scale.  Requires strictly
/// positive data.  `prefactor` is C; r_squared is measured in log space.
struct PowerLawFit {
  double exponent = 0;
  double prefactor = 0;
  double r_squared = 0;
};

[[nodiscard]] PowerLawFit fit_power_law(std::span<const double> x,
                                        std::span<const double> y);

}  // namespace rbb
