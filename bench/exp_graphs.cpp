// E14 -- Sect. 5 open question / conjecture: on regular graphs the
// maximum load should remain logarithmic (the previous bound was
// O(sqrt(t)) [12]).
//
// Table: per topology, the window max load vs log2 n and vs sqrt(window),
// plus the minimum empty fraction (whose *distribution across the
// network* is the technical obstacle the paper describes).  Regular
// graphs (cycle, torus, hypercube, random 8-regular) flatten near a small
// multiple of log n; the star (non-regular) is the contrast case.
#include <cmath>

#include "analysis/experiments.hpp"
#include "bench/bench_common.hpp"
#include "support/bounds.hpp"

int main(int argc, char** argv) {
  using namespace rbb;
  Cli cli = bench::make_cli(
      "E14: general graphs -- the Sect. 5 logarithmic-load conjecture");
  cli.add_u64("n", 0, "nodes (0 = scale default; must be a power of 4)");
  if (!cli.parse(argc, argv)) return 0;

  const BenchScale scale = bench_scale();
  const std::uint32_t trials = bench::trials_for(cli, scale, 2, 3, 8);
  const std::uint32_t n =
      cli.u64("n") != 0 ? static_cast<std::uint32_t>(cli.u64("n"))
                        : by_scale<std::uint32_t>(scale, 256, 1024, 4096);
  const std::uint64_t wf = by_scale<std::uint64_t>(scale, 5, 15, 40);

  Table table({"graph", "regular", "window max (mean)", "max / log2 n",
               "sqrt(window)", "min empty frac"});
  Rng graph_rng(cli.u64("seed") + 99);
  for (const std::string name :
       {"complete", "cycle", "torus", "hypercube", "regular8", "star"}) {
    const Graph g = make_named_graph(name, n, graph_rng);
    StabilityParams p;
    p.n = n;
    p.rounds = wf * n;
    p.trials = trials;
    p.seed = cli.u64("seed");
    p.graph = &g;
    const StabilityResult r = run_stability(p);
    table.row()
        .cell(name)
        .cell(std::string(g.is_regular() ? "yes" : "no"))
        .cell(r.window_max.mean(), 2)
        .cell(r.window_max.mean() / log2n(n), 3)
        .cell(std::sqrt(static_cast<double>(p.rounds)), 1)
        .cell(r.min_empty_fraction.min(), 3);
  }
  bench::emit(table, "E14_graphs",
              "window max load on general topologies (Sect. 5 conjecture)",
              scale);
  return 0;
}
