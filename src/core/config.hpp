// Load configurations of the repeated balls-into-bins process.
//
// A configuration q = (q_1, ..., q_n) gives the number of balls in each
// bin (paper, Sect. 2).  The process starts from an *arbitrary*
// configuration -- self-stabilization (Theorem 1) is precisely the claim
// that the worst start still converges in O(n) rounds -- so this module
// provides the canonical families of starting configurations the
// experiments sweep, plus the legitimacy predicate M(q) <= beta * log n.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/rng.hpp"
#include "support/stats.hpp"

namespace rbb {

/// Per-bin ball counts.  Invariant: values sum to the ball count m.
using LoadConfig = std::vector<std::uint32_t>;

/// Canonical initial-configuration families used by the experiments.
enum class InitialConfig {
  kOnePerBin,   // q_u = m/n spread round-robin (legitimate; 0 empty bins)
  kAllInOne,    // all m balls in bin 0 (the worst case for convergence)
  kRandom,      // m balls thrown u.a.r. (the one-shot occupancy)
  kHalfLoaded,  // m balls spread over bins 0..n/2-1 (half the bins empty)
  kGeometric,   // bin k gets ~ m * 2^-(k+1) balls (exponentially skewed)
};

/// Builds a configuration of `balls` balls in `bins` bins.  Requires
/// bins >= 1.  Deterministic except kRandom (which consumes rng).
[[nodiscard]] LoadConfig make_config(InitialConfig kind, std::uint32_t bins,
                                     std::uint64_t balls, Rng& rng);

/// Total number of balls in q.
[[nodiscard]] std::uint64_t total_balls(const LoadConfig& q);

/// Maximum load M(q).
[[nodiscard]] std::uint32_t max_load(const LoadConfig& q);

/// Number of empty bins in q.
[[nodiscard]] std::uint32_t empty_bins(const LoadConfig& q);

/// The paper's legitimacy predicate: M(q) <= beta * log2(n).  The paper
/// leaves the absolute constant beta unspecified; the experiments default
/// to beta = 4 (DESIGN.md Sect. 4; exp_beta_sensitivity measures the
/// constants).
[[nodiscard]] bool is_legitimate(const LoadConfig& q, double beta = 4.0);

/// Throws std::invalid_argument unless q is a valid configuration with
/// exactly `balls` balls.
void validate_config(const LoadConfig& q, std::uint64_t balls);

/// Occupancy profile of q: histogram over load values (count of bins
/// holding exactly k balls, for each k).  The stationary profile of the
/// repeated process decays geometrically in k -- experiment E20 compares
/// it against the Poisson profile of unconstrained walks and the
/// product-form profile of the closed Jackson network.
[[nodiscard]] Histogram occupancy_histogram(const LoadConfig& q);

/// Serializes q as "n:q0,q1,...,qn-1" (newline-free, whitespace-free).
[[nodiscard]] std::string serialize_config(const LoadConfig& q);

/// Parses the serialize_config format; throws std::invalid_argument on
/// malformed input.
[[nodiscard]] LoadConfig parse_config(const std::string& text);

/// Human-readable name for an InitialConfig (tables / CLI).
[[nodiscard]] const char* to_string(InitialConfig kind);

/// Parses the names produced by to_string; throws on unknown names.
[[nodiscard]] InitialConfig initial_config_from_string(const std::string& s);

}  // namespace rbb
