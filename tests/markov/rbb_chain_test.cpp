// Tests for the exact repeated balls-into-bins transition matrix and the
// derived stationary / mixing / correlation functionals.
#include "markov/rbb_chain.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "core/process.hpp"
#include "support/rng.hpp"

namespace rbb {
namespace {

TEST(RbbChain, RowsAreStochastic) {
  for (std::uint32_t n = 2; n <= 5; ++n) {
    const StateSpace space(n, n);
    const DenseMatrix p = build_rbb_transition_matrix(space);
    EXPECT_TRUE(p.is_row_stochastic(1e-10)) << "n=" << n;
  }
}

/// n = 2 by hand.  States in lexicographic order: (0,2), (1,1), (2,0).
/// From (0,2): one departure, uniform destination -> 1/2 each to (0,2)
/// and (1,1).  From (1,1): two departures -> (2,0) w.p. 1/4, (1,1) w.p.
/// 1/2, (0,2) w.p. 1/4.  (2,0) mirrors (0,2).
TEST(RbbChain, TwoBinMatrixMatchesHandComputation) {
  const StateSpace space(2, 2);
  const DenseMatrix p = build_rbb_transition_matrix(space);
  const std::size_t s02 = space.index_of({0, 2});
  const std::size_t s11 = space.index_of({1, 1});
  const std::size_t s20 = space.index_of({2, 0});
  EXPECT_NEAR(p.at(s02, s02), 0.5, 1e-12);
  EXPECT_NEAR(p.at(s02, s11), 0.5, 1e-12);
  EXPECT_NEAR(p.at(s02, s20), 0.0, 1e-12);
  EXPECT_NEAR(p.at(s11, s02), 0.25, 1e-12);
  EXPECT_NEAR(p.at(s11, s11), 0.5, 1e-12);
  EXPECT_NEAR(p.at(s11, s20), 0.25, 1e-12);
  EXPECT_NEAR(p.at(s20, s11), 0.5, 1e-12);
  EXPECT_NEAR(p.at(s20, s20), 0.5, 1e-12);
}

/// The n = 2 stationary law in closed form: pi = (1/4, 1/2, 1/4).
TEST(RbbChain, TwoBinStationaryClosedForm) {
  const StateSpace space(2, 2);
  const DenseMatrix p = build_rbb_transition_matrix(space);
  const std::vector<double> pi = stationary_distribution(p);
  EXPECT_NEAR(pi[space.index_of({0, 2})], 0.25, 1e-12);
  EXPECT_NEAR(pi[space.index_of({1, 1})], 0.5, 1e-12);
  EXPECT_NEAR(pi[space.index_of({2, 0})], 0.25, 1e-12);
}

/// Bins are exchangeable, so the stationary probability must be constant
/// on every permutation orbit.
TEST(RbbChain, StationaryIsPermutationSymmetric) {
  for (std::uint32_t n : {3u, 4u, 5u}) {
    const StateSpace space(n, n);
    const DenseMatrix p = build_rbb_transition_matrix(space);
    const std::vector<double> pi = stationary_distribution(p);
    for (const auto& orbit : space.orbits()) {
      const double ref = pi[orbit.front()];
      for (const std::size_t id : orbit) {
        EXPECT_NEAR(pi[id], ref, 1e-10) << "n=" << n;
      }
    }
  }
}

TEST(RbbChain, StationaryAgreesWithPowerIteration) {
  const StateSpace space(4, 4);
  const DenseMatrix p = build_rbb_transition_matrix(space);
  EXPECT_LT(total_variation(stationary_distribution(p),
                            stationary_by_power_iteration(p)),
            1e-9);
}

TEST(RbbChain, ExactDistributionRoundZeroIsPointMass) {
  const StateSpace space(3, 3);
  const DenseMatrix p = build_rbb_transition_matrix(space);
  const LoadConfig q0 = {3, 0, 0};
  const auto dist = exact_distribution_after(space, p, q0, 0);
  EXPECT_DOUBLE_EQ(dist[space.index_of(q0)], 1.0);
}

TEST(RbbChain, ExactDistributionRoundOneIsTransitionRow) {
  const StateSpace space(3, 3);
  const DenseMatrix p = build_rbb_transition_matrix(space);
  const LoadConfig q0 = {1, 1, 1};
  const std::size_t from = space.index_of(q0);
  const auto dist = exact_distribution_after(space, p, q0, 1);
  for (std::size_t id = 0; id < space.size(); ++id) {
    EXPECT_NEAR(dist[id], p.at(from, id), 1e-14);
  }
}

/// Monte-Carlo cross-check: the empirical state distribution of the
/// simulation kernel after a few rounds must match the exact transient
/// law.  This ties the exact matrix to the production simulator.
TEST(RbbChain, SimulationKernelMatchesExactTransientLaw) {
  const std::uint32_t n = 3;
  const StateSpace space(n, n);
  const DenseMatrix p = build_rbb_transition_matrix(space);
  const LoadConfig q0 = {3, 0, 0};
  const std::uint64_t rounds = 5;
  const auto exact = exact_distribution_after(space, p, q0, rounds);

  const std::uint64_t trials = 40000;
  std::vector<double> empirical(space.size(), 0.0);
  for (std::uint64_t trial = 0; trial < trials; ++trial) {
    Rng rng(2024, trial);
    RepeatedBallsProcess proc(q0, rng);
    proc.run(rounds);
    empirical[space.index_of(proc.loads())] += 1.0;
  }
  for (double& v : empirical) v /= static_cast<double>(trials);
  EXPECT_LT(total_variation(exact, empirical), 0.02);
}

/// Appendix B, computed exactly: for n = 2 from (1,1),
/// P(X1=0, X2=0) = 1/8 > P(X1=0) P(X2=0) = 1/4 * 3/8 = 3/32.
TEST(RbbChain, AppendixBExactProbabilities) {
  const StateSpace space(2, 2);
  const auto corr = exact_arrival_correlation(space, {1, 1});
  EXPECT_NEAR(corr.p_both_zero, 1.0 / 8.0, 1e-12);
  EXPECT_NEAR(corr.p_first_zero, 1.0 / 4.0, 1e-12);
  EXPECT_NEAR(corr.p_second_zero, 3.0 / 8.0, 1e-12);
  EXPECT_GT(corr.excess(), 0.03);  // exactly 1/8 - 3/32 = 1/32
  EXPECT_NEAR(corr.excess(), 1.0 / 32.0, 1e-12);
}

/// The positive arrival correlation is not a 2-bin artifact: the exact
/// excess stays strictly positive for n = 3 and 4 from one-per-bin starts.
TEST(RbbChain, ArrivalCorrelationPositiveForLargerN) {
  for (std::uint32_t n : {3u, 4u}) {
    const StateSpace space(n, n);
    const LoadConfig q0(n, 1);
    const auto corr = exact_arrival_correlation(space, q0);
    EXPECT_GT(corr.excess(), 0.0) << "n=" << n;
  }
}

TEST(RbbChain, ArrivalJointLawIsADistribution) {
  const StateSpace space(3, 3);
  const auto joint = exact_arrival_joint_law(space, {2, 1, 0});
  double total = 0.0;
  for (const auto& row : joint) {
    for (const double v : row) {
      EXPECT_GE(v, 0.0);
      total += v;
    }
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
}

/// n = 2 is reversible (flows between (1,1) and the corner states balance
/// exactly), but from n = 3 on the chain violates detailed balance --
/// the structural obstruction the paper points to in Sect. 1.3.
TEST(RbbChain, DetailedBalanceHoldsOnlyForTwoBins) {
  {
    const StateSpace space(2, 2);
    const DenseMatrix p = build_rbb_transition_matrix(space);
    EXPECT_LT(detailed_balance_residual(p, stationary_distribution(p)),
              1e-12);
  }
  for (std::uint32_t n : {3u, 4u, 5u}) {
    const StateSpace space(n, n);
    const DenseMatrix p = build_rbb_transition_matrix(space);
    EXPECT_GT(detailed_balance_residual(p, stationary_distribution(p)),
              1e-5)
        << "n=" << n;
  }
}

/// For n <= 3 the stationary law happens to admit a product form; from
/// n = 4 on it provably does not (TV distance to the best product fit is
/// bounded away from numerical noise) -- the "very likely not product
/// form" claim of Sect. 1.3, made exact at small n.
TEST(RbbChain, ProductFormFailsFromFourBins) {
  for (std::uint32_t n : {2u, 3u}) {
    const StateSpace space(n, n);
    const DenseMatrix p = build_rbb_transition_matrix(space);
    EXPECT_LT(product_form_distance(space, stationary_distribution(p)), 1e-8)
        << "n=" << n;
  }
  for (std::uint32_t n : {4u, 5u}) {
    const StateSpace space(n, n);
    const DenseMatrix p = build_rbb_transition_matrix(space);
    EXPECT_GT(product_form_distance(space, stationary_distribution(p)), 1e-4)
        << "n=" << n;
  }
}

TEST(RbbChain, ExactFunctionalsOfTwoBinStationary) {
  const StateSpace space(2, 2);
  const DenseMatrix p = build_rbb_transition_matrix(space);
  const auto f = exact_functionals(space, stationary_distribution(p));
  EXPECT_NEAR(f.expected_max_load, 1.5, 1e-12);
  EXPECT_NEAR(f.expected_empty_fraction, 0.25, 1e-12);
  EXPECT_NEAR(f.p_legitimate, 1.0, 1e-12);
  ASSERT_EQ(f.max_load_tail.size(), 3u);
  EXPECT_NEAR(f.max_load_tail[0], 1.0, 1e-12);
  EXPECT_NEAR(f.max_load_tail[1], 1.0, 1e-12);
  EXPECT_NEAR(f.max_load_tail[2], 0.5, 1e-12);
}

/// The expected stationary empty fraction grows with n toward the
/// independent-throws equilibrium (1/e ~ 0.368) and always exceeds the
/// paper's n/4 working bound.
TEST(RbbChain, StationaryEmptyFractionExceedsQuarter) {
  double prev = 0.0;
  for (std::uint32_t n = 2; n <= 5; ++n) {
    const StateSpace space(n, n);
    const DenseMatrix p = build_rbb_transition_matrix(space);
    const auto f = exact_functionals(space, stationary_distribution(p));
    EXPECT_GE(f.expected_empty_fraction, 0.25 - 1e-12) << "n=" << n;
    EXPECT_GT(f.expected_empty_fraction, prev) << "n=" << n;
    prev = f.expected_empty_fraction;
  }
}

TEST(RbbChain, ExactMixingTimeIsSmallAndMonotoneInEps) {
  const StateSpace space(3, 3);
  const DenseMatrix p = build_rbb_transition_matrix(space);
  const std::vector<double> pi = stationary_distribution(p);
  const std::uint64_t mix_loose = exact_mixing_time(space, p, pi, 0.25, 100);
  const std::uint64_t mix_tight = exact_mixing_time(space, p, pi, 0.01, 100);
  EXPECT_LE(mix_loose, 10u);
  EXPECT_LE(mix_loose, mix_tight);
  EXPECT_LE(mix_tight, 50u);
}

TEST(RbbChain, MixingTimeFromStationaryStartIsZeroish) {
  // Starting *at* a heavy orbit only: restricting the start set can only
  // shorten the reported mixing time.
  const StateSpace space(3, 3);
  const DenseMatrix p = build_rbb_transition_matrix(space);
  const std::vector<double> pi = stationary_distribution(p);
  const std::uint64_t all = exact_mixing_time(space, p, pi, 0.25, 100);
  const std::uint64_t one = exact_mixing_time(space, p, pi, 0.25, 100,
                                              {space.index_of({1, 1, 1})});
  EXPECT_LE(one, all);
}

TEST(RbbChain, MixingTimeUnreachedReturnsSentinel) {
  const StateSpace space(3, 3);
  const DenseMatrix p = build_rbb_transition_matrix(space);
  const std::vector<double> pi = stationary_distribution(p);
  EXPECT_EQ(exact_mixing_time(space, p, pi, 1e-12, 0), 1u);
}

}  // namespace
}  // namespace rbb
