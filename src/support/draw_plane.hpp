// Batched counter-RNG draw planes (DESIGN.md Sect. 5).
//
// CounterRng::index is a *scalar* draw: one Philox4x32-10 block per
// call, 10 serially dependent rounds of two 64-bit multiplies each, so
// the per-draw cost is dominated by multiply latency the out-of-order
// core cannot hide.  Salmon et al. designed Philox for exactly the
// opposite usage -- wide batches of independent blocks -- and every hot
// consumer in this repository (relaunch destinations, d-choices
// candidates, fresh refill arrivals, token moves) asks for a whole
// *plane* of draws per round: the destinations of a contiguous or
// gathered slot range at a fixed (seed, round).
//
// DrawPlane materializes such a plane in one pass:
//
//   * the per-round key schedule is hoisted once per plane (the scalar
//     path re-derives it per block),
//   * blocks are generated 4 lanes at a time in portable scalar code
//     (independent dependency chains the core can overlap), or 8 lanes
//     at a time with AVX2 -- two 4-lane mul_epu32 halves interleaved
//     per Philox round -- selected by runtime dispatch,
//   * the Lemire bounded reduction is batched: the rejection threshold
//     is hoisted per plane, every lane commits its multiply-shift
//     result branch-free, and the (astronomically rare, < 2^-32 per
//     draw) rejections land on a deferred retry list fixed up from the
//     stored second words afterwards.
//
// Bit-identity contract: for every slot, the plane output equals
// lemire_bounded(words(round, slot), n) of the scalar CounterRng --
// same (seed, round, slot) -> block mapping, only the evaluation order
// changes.  tests/support/draw_plane_test.cpp pins this across
// unaligned ranges, tail lanes, gathered slot lists, and both dispatch
// branches; every sharded parity suite inherits the pin end to end.
//
// Dispatch control: RBB_DRAW_PLANE_SIMD=0 in the environment forces the
// portable path (CI runs the parity suites both ways);
// force_plane_isa() does the same programmatically for tests/benches.
#pragma once

#include <cstddef>
#include <cstdint>

#include "support/counter_rng.hpp"

namespace rbb {

/// The instruction sets a plane can draw with.
enum class PlaneIsa {
  kPortable,  // 4-lane scalar batching; every target
  kAvx2,      // 8-lane AVX2 batching; x86-64 with AVX2 only
};

/// The ISA the next plane fill will use: force_plane_isa() override if
/// set, else auto-detection (CPU support, RBB_DRAW_PLANE_SIMD=0 forces
/// portable).
[[nodiscard]] PlaneIsa active_plane_isa() noexcept;

/// True when this machine can execute `isa`.
[[nodiscard]] bool plane_isa_supported(PlaneIsa isa) noexcept;

/// Testing/bench hook: pin the dispatch to `isa`.  The caller must
/// check plane_isa_supported first; forcing an unsupported ISA would
/// fault on the first fill.
void force_plane_isa(PlaneIsa isa) noexcept;

/// Reverts force_plane_isa: back to auto-detection.
void reset_plane_isa() noexcept;

/// Batched Lemire bounded reduction: out[i] = the same value
/// lemire_bounded(w0[i], w1[i], n) yields, with the threshold hoisted
/// and rejections deferred to a fix-up pass so the main loop is
/// branch-free.  Exposed for tests (crafted words force the retry path,
/// which no feasible number of real draws reaches) and for the
/// perf_kernels batch-vs-per-call microbench.
void lemire_bounded_batch(const std::uint64_t* w0, const std::uint64_t* w1,
                          std::size_t count, std::uint32_t n,
                          std::uint32_t* out) noexcept;

/// One round's batched draws under one hoisted key schedule.
///
/// Copying is free (80 bytes of derived round keys, no other state);
/// CounterStream owns one per stream and re-uses it every round -- the
/// (round, slot) coordinates are per-call, exactly as in CounterRng.
class DrawPlane {
 public:
  constexpr explicit DrawPlane(const CounterRng& rng) noexcept
      : schedule_(philox_key_schedule(rng.key())) {}

  /// Destinations of the contiguous slot range
  /// [slot_begin, slot_begin + count) of `round`:
  /// out[i] = CounterRng::index(round, slot_begin + i, n), bit for bit.
  void fill_range(std::uint64_t round, std::uint64_t slot_begin,
                  std::size_t count, std::uint32_t n,
                  std::uint32_t* out) const noexcept;

  /// Destinations of a gathered slot list with a shared upper half:
  /// out[i] = CounterRng::index(round, (slot_hi << 32) | slot_lo[i], n).
  /// Covers every gathered consumer: relaunch slots (hi = 0, lo = the
  /// releasing bins) and d-choices candidate j (hi = j).
  void fill_gather(std::uint64_t round, const std::uint32_t* slot_lo,
                   std::uint32_t slot_hi, std::size_t count, std::uint32_t n,
                   std::uint32_t* out) const noexcept;

  /// The hoisted per-round keys (testing only).
  [[nodiscard]] constexpr const PhiloxKeySchedule& schedule() const noexcept {
    return schedule_;
  }

 private:
  PhiloxKeySchedule schedule_;
};

}  // namespace rbb
