// The `rbb` experiment CLI (see src/runner/runner.hpp for the surface).
#include "runner/runner.hpp"

int main(int argc, char** argv) {
  return rbb::runner::runner_main(argc, argv);
}
