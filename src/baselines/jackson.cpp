#include "baselines/jackson.hpp"

#include <algorithm>
#include <stdexcept>

namespace rbb {

ClosedJacksonNetwork::ClosedJacksonNetwork(LoadConfig initial, Rng rng)
    : loads_(std::move(initial)),
      rng_(rng),
      busy_(static_cast<std::uint32_t>(loads_.size())),
      customers_(total_balls(loads_)) {
  if (loads_.empty()) {
    throw std::invalid_argument("ClosedJacksonNetwork: empty configuration");
  }
  for (std::uint32_t u = 0; u < loads_.size(); ++u) {
    if (loads_[u] > 0) busy_.insert(u);
  }
  running_max_ = rbb::max_load(loads_);
}

double ClosedJacksonNetwork::step_event() {
  if (busy_.empty()) return 0.0;
  // All busy stations serve at rate 1, so the superposition has rate
  // #busy and the completing station is uniform over the busy set.
  const double dt = rng_.exponential(static_cast<double>(busy_.size()));
  time_ += dt;
  ++events_;
  const std::uint32_t u = busy_.sample(rng_);
  if (--loads_[u] == 0) busy_.erase(u);
  const std::uint32_t v = rng_.index(station_count());
  if (++loads_[v] == 1) busy_.insert(v);
  running_max_ = std::max(running_max_, loads_[v]);
  return dt;
}

void ClosedJacksonNetwork::run_until(double horizon) {
  while (time_ < horizon && !busy_.empty()) {
    // Peek the next inter-event time; discard the event if it lands past
    // the horizon (valid by memorylessness).
    const double dt = rng_.exponential(static_cast<double>(busy_.size()));
    if (time_ + dt > horizon) {
      time_ = horizon;
      return;
    }
    time_ += dt;
    ++events_;
    const std::uint32_t u = busy_.sample(rng_);
    if (--loads_[u] == 0) busy_.erase(u);
    const std::uint32_t v = rng_.index(station_count());
    if (++loads_[v] == 1) busy_.insert(v);
    running_max_ = std::max(running_max_, loads_[v]);
  }
  if (time_ < horizon) time_ = horizon;
}

std::uint32_t ClosedJacksonNetwork::max_load() const {
  return rbb::max_load(loads_);
}

void ClosedJacksonNetwork::check_invariants() const {
  if (total_balls(loads_) != customers_) {
    throw std::logic_error("ClosedJacksonNetwork: customer count drifted");
  }
  for (std::uint32_t u = 0; u < loads_.size(); ++u) {
    if ((loads_[u] > 0) != busy_.contains(u)) {
      throw std::logic_error("ClosedJacksonNetwork: busy set out of sync");
    }
  }
}

}  // namespace rbb
