// E6 -- Lemma 5: for the eq.-(4) chain started at k, for t >= 8k,
// P(tau > t) <= e^{-t/144}.
//
// Table: per start k, the empirical tail P(tau > t) at a grid of t values
// vs the Lemma-5 bound.  The bound's rate constant 1/144 is loose by
// design; the empirical decay rate is much faster (the drift is -1/4, so
// the true rate is Theta(1)).
#include <cmath>

#include "analysis/experiments.hpp"
#include "bench/bench_common.hpp"
#include "support/bounds.hpp"

int main(int argc, char** argv) {
  using namespace rbb;
  Cli cli = bench::make_cli(
      "E6: Z-chain absorption tail vs the Lemma-5 bound e^{-t/144}");
  cli.add_u64("n", 4096, "system size parameterizing the arrival law");
  if (!cli.parse(argc, argv)) return 0;

  const BenchScale scale = bench_scale();
  const std::uint32_t trials =
      bench::trials_for(cli, scale, 20000, 200000, 1000000);
  const auto n = static_cast<std::uint32_t>(cli.u64("n"));

  Table table({"start k", "t", "P(tau > t) empirical", "e^{-t/144} bound",
               "bound holds", "E[tau] (mean)"});
  for (const std::uint64_t k : {2ull, 8ull, 32ull}) {
    ZChainTailParams p;
    p.n = n;
    p.start = k;
    p.ts = {8 * k, 16 * k, 32 * k, 64 * k};
    p.trials = trials;
    p.seed = cli.u64("seed");
    const ZChainTailResult r = run_zchain_tail(p);
    for (std::size_t i = 0; i < p.ts.size(); ++i) {
      const double bound = zchain_tail_bound(static_cast<double>(p.ts[i]));
      table.row()
          .cell(k)
          .cell(p.ts[i])
          .cell(r.empirical_tail[i], 6)
          .cell(bound, 6)
          .cell(std::string(r.empirical_tail[i] <= bound + 1e-9 ? "yes"
                                                                : "NO"))
          .cell(r.absorption_time.mean(), 2);
    }
  }
  bench::emit(table, "E6_zchain",
              "absorption-time tail obeys Lemma 5's e^{-t/144}", scale);
  return 0;
}
