// Tests for the Lemma-3 coupling: construction invariants, domination of
// the original process by Tetris, case-(ii) accounting.
#include "coupling/coupling.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "core/process.hpp"

namespace rbb {
namespace {

/// Builds a start configuration with >= n/4 empty bins, as Lemma 3
/// requires (one warm-up round of the original process from random).
LoadConfig coupling_start(std::uint32_t n, Rng& rng) {
  LoadConfig q = make_config(InitialConfig::kRandom, n, n, rng);
  if (empty_bins(q) < n / 4) {
    // split() so the caller's rng does not share the warm-up's stream.
    RepeatedBallsProcess warmup(std::move(q), rng.split());
    warmup.step();
    q = warmup.loads();
  }
  return q;
}

TEST(Coupling, RejectsEmptyConfig) {
  EXPECT_THROW(CoupledProcesses(LoadConfig{}, Rng(1)), std::invalid_argument);
}

TEST(Coupling, StartsIdentical) {
  Rng rng(2);
  const LoadConfig q = coupling_start(64, rng);
  const CoupledProcesses coupled(q, rng);
  EXPECT_EQ(coupled.original_loads(), q);
  EXPECT_EQ(coupled.tetris_loads(), q);
  EXPECT_EQ(coupled.round(), 0u);
}

TEST(Coupling, OriginalProcessConservesBalls) {
  Rng rng(3);
  const LoadConfig q = coupling_start(64, rng);
  const std::uint64_t balls = total_balls(q);
  CoupledProcesses coupled(q, rng);
  for (int t = 0; t < 200; ++t) {
    coupled.step();
    ASSERT_EQ(total_balls(coupled.original_loads()), balls);
  }
}

TEST(Coupling, TetrisDominatesFromGoodStart) {
  // With >= n/4 empty bins at the start, domination should hold in every
  // round of a long window (Lemma 3; failure prob exponentially small).
  constexpr std::uint32_t n = 512;
  Rng rng(4);
  CoupledProcesses coupled(coupling_start(n, rng), rng);
  for (std::uint32_t t = 0; t < 20 * n; ++t) {
    const CoupledRoundStats s = coupled.step();
    ASSERT_TRUE(s.dominated) << "round " << t;
    ASSERT_FALSE(s.case_two) << "round " << t;
  }
  EXPECT_EQ(coupled.violation_rounds(), 0u);
  EXPECT_EQ(coupled.case_two_rounds(), 0u);
  EXPECT_EQ(coupled.first_violation_round(), 0u);
  EXPECT_GE(coupled.tetris_running_max(), coupled.original_running_max());
}

TEST(Coupling, PerBinDominationHolds) {
  constexpr std::uint32_t n = 128;
  Rng rng(5);
  CoupledProcesses coupled(coupling_start(n, rng), rng);
  for (int t = 0; t < 500; ++t) {
    coupled.step();
    const LoadConfig& orig = coupled.original_loads();
    const LoadConfig& tet = coupled.tetris_loads();
    for (std::uint32_t u = 0; u < n; ++u) {
      ASSERT_GE(tet[u], orig[u]) << "bin " << u << " round " << t;
    }
  }
}

TEST(Coupling, CaseTwoTriggeredByPathologicalStart) {
  // Start with every bin non-empty: |W| = n > 3n/4 forces case (ii) in
  // round 1 and the accounting must record it.
  constexpr std::uint32_t n = 64;
  CoupledProcesses coupled(LoadConfig(n, 1), Rng(6));
  const CoupledRoundStats s = coupled.step();
  EXPECT_TRUE(s.case_two);
  EXPECT_EQ(coupled.case_two_rounds(), 1u);
}

TEST(Coupling, RunningMaxMonotone) {
  Rng rng(7);
  CoupledProcesses coupled(coupling_start(64, rng), rng);
  std::uint32_t prev_orig = 0;
  std::uint32_t prev_tet = 0;
  for (int t = 0; t < 100; ++t) {
    coupled.step();
    ASSERT_GE(coupled.original_running_max(), prev_orig);
    ASSERT_GE(coupled.tetris_running_max(), prev_tet);
    prev_orig = coupled.original_running_max();
    prev_tet = coupled.tetris_running_max();
  }
}

TEST(Coupling, DeterministicForSeed) {
  auto run = [] {
    Rng rng(8);
    CoupledProcesses coupled(coupling_start(32, rng), rng);
    coupled.run(100);
    return std::make_pair(coupled.original_loads(), coupled.tetris_loads());
  };
  EXPECT_EQ(run(), run());
}

// Property sweep: domination across sizes and seeds.
class CouplingSweep
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, int>> {};

TEST_P(CouplingSweep, DominationHoldsOverWindow) {
  const auto [n, seed] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed) * 1000 + n);
  CoupledProcesses coupled(coupling_start(n, rng), rng);
  coupled.run(10 * n);
  EXPECT_EQ(coupled.violation_rounds(), 0u) << "n=" << n << " seed=" << seed;
  EXPECT_EQ(coupled.case_two_rounds(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, CouplingSweep,
    ::testing::Combine(::testing::Values(64u, 256u, 1024u),
                       ::testing::Values(1, 2, 3)));

}  // namespace
}  // namespace rbb
