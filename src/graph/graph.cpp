#include "graph/graph.hpp"

#include <algorithm>
#include <cmath>
#include <queue>
#include <stdexcept>
#include <unordered_set>

namespace rbb {
namespace {

std::uint64_t edge_key(std::uint32_t u, std::uint32_t v) {
  if (u > v) std::swap(u, v);
  return (static_cast<std::uint64_t>(u) << 32) | v;
}

}  // namespace

Graph::Graph(std::uint32_t node_count,
             const std::vector<std::pair<std::uint32_t, std::uint32_t>>& edges)
    : n_(node_count) {
  if (n_ == 0) throw std::invalid_argument("Graph: node_count == 0");
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(edges.size() * 2);
  std::vector<std::uint32_t> degree(n_, 0);
  for (const auto& [u, v] : edges) {
    if (u >= n_ || v >= n_) {
      throw std::invalid_argument("Graph: endpoint out of range");
    }
    if (u == v) throw std::invalid_argument("Graph: self-loop");
    if (!seen.insert(edge_key(u, v)).second) {
      throw std::invalid_argument("Graph: duplicate edge");
    }
    ++degree[u];
    ++degree[v];
  }
  offsets_.assign(n_ + 1, 0);
  for (std::uint32_t u = 0; u < n_; ++u) {
    offsets_[u + 1] = offsets_[u] + degree[u];
  }
  neighbors_.resize(offsets_[n_]);
  std::vector<std::uint32_t> fill(offsets_.begin(), offsets_.end() - 1);
  for (const auto& [u, v] : edges) {
    neighbors_[fill[u]++] = v;
    neighbors_[fill[v]++] = u;
  }
  // Sorted incidence lists make has_edge logarithmic and the layout
  // deterministic for a given edge list.
  for (std::uint32_t u = 0; u < n_; ++u) {
    std::sort(neighbors_.begin() + offsets_[u],
              neighbors_.begin() + offsets_[u + 1]);
  }
}

bool Graph::has_edge(std::uint32_t u, std::uint32_t v) const {
  if (u >= n_ || v >= n_) return false;
  const auto nbrs = neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

std::uint32_t Graph::min_degree() const {
  std::uint32_t best = degree(0);
  for (std::uint32_t u = 1; u < n_; ++u) best = std::min(best, degree(u));
  return best;
}

std::uint32_t Graph::max_degree() const {
  std::uint32_t best = degree(0);
  for (std::uint32_t u = 1; u < n_; ++u) best = std::max(best, degree(u));
  return best;
}

bool Graph::is_connected() const {
  std::vector<char> visited(n_, 0);
  std::queue<std::uint32_t> frontier;
  frontier.push(0);
  visited[0] = 1;
  std::uint32_t reached = 1;
  while (!frontier.empty()) {
    const std::uint32_t u = frontier.front();
    frontier.pop();
    for (std::uint32_t v : neighbors(u)) {
      if (!visited[v]) {
        visited[v] = 1;
        ++reached;
        frontier.push(v);
      }
    }
  }
  return reached == n_;
}

std::uint32_t Graph::diameter() const {
  std::uint32_t best = 0;
  std::vector<std::uint32_t> dist(n_);
  for (std::uint32_t s = 0; s < n_; ++s) {
    std::fill(dist.begin(), dist.end(), UINT32_MAX);
    std::queue<std::uint32_t> frontier;
    frontier.push(s);
    dist[s] = 0;
    while (!frontier.empty()) {
      const std::uint32_t u = frontier.front();
      frontier.pop();
      for (std::uint32_t v : neighbors(u)) {
        if (dist[v] == UINT32_MAX) {
          dist[v] = dist[u] + 1;
          frontier.push(v);
        }
      }
    }
    for (std::uint32_t u = 0; u < n_; ++u) {
      if (dist[u] == UINT32_MAX) {
        throw std::logic_error("Graph::diameter: graph not connected");
      }
      best = std::max(best, dist[u]);
    }
  }
  return best;
}

Graph make_cycle(std::uint32_t n) {
  if (n < 3) throw std::invalid_argument("make_cycle: n < 3");
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  edges.reserve(n);
  for (std::uint32_t u = 0; u < n; ++u) edges.emplace_back(u, (u + 1) % n);
  return Graph(n, edges);
}

Graph make_path(std::uint32_t n) {
  if (n < 2) throw std::invalid_argument("make_path: n < 2");
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  edges.reserve(n - 1);
  for (std::uint32_t u = 0; u + 1 < n; ++u) edges.emplace_back(u, u + 1);
  return Graph(n, edges);
}

Graph make_complete(std::uint32_t n) {
  if (n < 2) throw std::invalid_argument("make_complete: n < 2");
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  edges.reserve(static_cast<std::size_t>(n) * (n - 1) / 2);
  for (std::uint32_t u = 0; u < n; ++u) {
    for (std::uint32_t v = u + 1; v < n; ++v) edges.emplace_back(u, v);
  }
  return Graph(n, edges);
}

Graph make_torus(std::uint32_t rows, std::uint32_t cols) {
  if (rows < 3 || cols < 3) {
    throw std::invalid_argument("make_torus: rows and cols must be >= 3");
  }
  const auto id = [cols](std::uint32_t r, std::uint32_t c) {
    return r * cols + c;
  };
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  edges.reserve(static_cast<std::size_t>(rows) * cols * 2);
  for (std::uint32_t r = 0; r < rows; ++r) {
    for (std::uint32_t c = 0; c < cols; ++c) {
      edges.emplace_back(id(r, c), id(r, (c + 1) % cols));
      edges.emplace_back(id(r, c), id((r + 1) % rows, c));
    }
  }
  return Graph(rows * cols, edges);
}

Graph make_hypercube(std::uint32_t dim) {
  if (dim < 1 || dim > 24) {
    throw std::invalid_argument("make_hypercube: dim outside [1, 24]");
  }
  const std::uint32_t n = 1u << dim;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  edges.reserve(static_cast<std::size_t>(n) * dim / 2);
  for (std::uint32_t u = 0; u < n; ++u) {
    for (std::uint32_t b = 0; b < dim; ++b) {
      const std::uint32_t v = u ^ (1u << b);
      if (u < v) edges.emplace_back(u, v);
    }
  }
  return Graph(n, edges);
}

Graph make_star(std::uint32_t n) {
  if (n < 2) throw std::invalid_argument("make_star: n < 2");
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  edges.reserve(n - 1);
  for (std::uint32_t u = 1; u < n; ++u) edges.emplace_back(0u, u);
  return Graph(n, edges);
}

Graph make_lollipop(std::uint32_t n) {
  if (n < 4) throw std::invalid_argument("make_lollipop: n < 4");
  const std::uint32_t clique = (n + 1) / 2;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  for (std::uint32_t u = 0; u < clique; ++u) {
    for (std::uint32_t v = u + 1; v < clique; ++v) edges.emplace_back(u, v);
  }
  // Path hangs off node clique-1.
  for (std::uint32_t u = clique - 1; u + 1 < n; ++u) {
    edges.emplace_back(u, u + 1);
  }
  return Graph(n, edges);
}

Graph make_barbell(std::uint32_t n) {
  if (n < 6) throw std::invalid_argument("make_barbell: n < 6");
  const std::uint32_t clique = (n + 2) / 3;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  // Left clique: [0, clique); right clique: [n - clique, n).
  for (std::uint32_t u = 0; u < clique; ++u) {
    for (std::uint32_t v = u + 1; v < clique; ++v) edges.emplace_back(u, v);
  }
  const std::uint32_t right = n - clique;
  for (std::uint32_t u = right; u < n; ++u) {
    for (std::uint32_t v = u + 1; v < n; ++v) edges.emplace_back(u, v);
  }
  // Connecting path through the middle nodes (possibly length 0).
  for (std::uint32_t u = clique - 1; u < right; ++u) {
    edges.emplace_back(u, u + 1);
  }
  return Graph(n, edges);
}

Graph make_complete_bipartite(std::uint32_t a, std::uint32_t b) {
  if (a == 0 || b == 0) {
    throw std::invalid_argument("make_complete_bipartite: empty side");
  }
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  edges.reserve(static_cast<std::size_t>(a) * b);
  for (std::uint32_t u = 0; u < a; ++u) {
    for (std::uint32_t v = 0; v < b; ++v) edges.emplace_back(u, a + v);
  }
  return Graph(a + b, edges);
}

Graph make_binary_tree(std::uint32_t n) {
  if (n < 2) throw std::invalid_argument("make_binary_tree: n < 2");
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  edges.reserve(n - 1);
  for (std::uint32_t u = 1; u < n; ++u) edges.emplace_back((u - 1) / 2, u);
  return Graph(n, edges);
}

Graph make_random_regular(std::uint32_t n, std::uint32_t d, Rng& rng) {
  if (d == 0 || d >= n) {
    throw std::invalid_argument("make_random_regular: need 0 < d < n");
  }
  if ((static_cast<std::uint64_t>(n) * d) % 2 != 0) {
    throw std::invalid_argument("make_random_regular: n*d must be even");
  }
  // Steger-Wormald pairing: draw stub pairs one at a time, rejecting only
  // self-loops and duplicates.  Near-uniform for d = o(n^{1/3}) and
  // succeeds w.h.p.; the rare stuck end-game (all remaining stub pairs
  // invalid) triggers a full restart.
  constexpr int kMaxAttempts = 1000;
  constexpr int kMaxPairTries = 400;
  for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
    std::vector<std::uint32_t> stubs;
    stubs.reserve(static_cast<std::size_t>(n) * d);
    for (std::uint32_t u = 0; u < n; ++u) {
      for (std::uint32_t j = 0; j < d; ++j) stubs.push_back(u);
    }
    std::unordered_set<std::uint64_t> seen;
    seen.reserve(stubs.size());
    std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
    edges.reserve(stubs.size() / 2);
    bool stuck = false;
    while (!stubs.empty()) {
      bool paired = false;
      for (int tries = 0; tries < kMaxPairTries; ++tries) {
        const auto i = static_cast<std::size_t>(rng.below(stubs.size()));
        auto j = static_cast<std::size_t>(rng.below(stubs.size() - 1));
        if (j >= i) ++j;
        const std::uint32_t u = stubs[i];
        const std::uint32_t v = stubs[j];
        if (u == v || seen.count(edge_key(u, v)) != 0) continue;
        seen.insert(edge_key(u, v));
        edges.emplace_back(u, v);
        // Remove both stubs (higher index first to keep i valid).
        const std::size_t hi = std::max(i, j);
        const std::size_t lo = std::min(i, j);
        stubs[hi] = stubs.back();
        stubs.pop_back();
        stubs[lo] = stubs.back();
        stubs.pop_back();
        paired = true;
        break;
      }
      if (!paired) {
        stuck = true;
        break;
      }
    }
    if (!stuck) return Graph(n, edges);
  }
  throw std::runtime_error(
      "make_random_regular: pairing failed repeatedly (d too large?)");
}

Graph make_gnp(std::uint32_t n, double p, Rng& rng) {
  if (n < 2) throw std::invalid_argument("make_gnp: n < 2");
  if (!(p >= 0.0 && p <= 1.0)) {
    throw std::invalid_argument("make_gnp: p outside [0, 1]");
  }
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  if (p == 0.0) return Graph(n, edges);
  if (p == 1.0) return make_complete(n);
  // Geometric skipping (Batagelj & Brandes 2005): walk the lower triangle
  // {(v, w) : w < v} and jump Geometric(p) pairs between successive edges.
  const double log_q = std::log1p(-p);
  std::uint64_t v = 1;
  std::int64_t w = -1;
  while (v < n) {
    const double skip = std::floor(std::log1p(-rng.uniform()) / log_q);
    w += 1 + static_cast<std::int64_t>(skip);
    while (w >= static_cast<std::int64_t>(v) && v < n) {
      w -= static_cast<std::int64_t>(v);
      ++v;
    }
    if (v < n) {
      edges.emplace_back(static_cast<std::uint32_t>(v),
                         static_cast<std::uint32_t>(w));
    }
  }
  return Graph(n, edges);
}

Graph make_named_graph(const std::string& name, std::uint32_t n, Rng& rng) {
  if (name == "cycle") return make_cycle(n);
  if (name == "path") return make_path(n);
  if (name == "complete") return make_complete(n);
  if (name == "star") return make_star(n);
  if (name == "torus") {
    auto rows = static_cast<std::uint32_t>(std::sqrt(static_cast<double>(n)));
    while (rows > 3 && n % rows != 0) --rows;
    if (rows < 3 || n / rows < 3) {
      throw std::invalid_argument("make_named_graph: torus needs n = r*c, r,c >= 3");
    }
    return make_torus(rows, n / rows);
  }
  if (name == "hypercube") {
    std::uint32_t dim = 0;
    while ((1u << (dim + 1)) <= n) ++dim;
    if ((1u << dim) != n) {
      throw std::invalid_argument("make_named_graph: hypercube needs n = 2^k");
    }
    return make_hypercube(dim);
  }
  if (name == "lollipop") return make_lollipop(n);
  if (name == "barbell") return make_barbell(n);
  if (name == "bipartite") {
    return make_complete_bipartite(n / 2, n - n / 2);
  }
  if (name == "tree") return make_binary_tree(n);
  if (name.rfind("regular", 0) == 0) {
    const std::uint32_t d =
        static_cast<std::uint32_t>(std::stoul(name.substr(7)));
    return make_random_regular(n, d, rng);
  }
  throw std::invalid_argument("make_named_graph: unknown graph: " + name);
}

}  // namespace rbb
