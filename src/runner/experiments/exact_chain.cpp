// Exact chain -- exact finite-state analysis of the repeated
// balls-into-bins chain (markov/).  No Monte-Carlo error: the full
// transition matrix is built on the composition state space for
// n = m <= 6 and every reported number is computed from it directly.
// Second bench of the E6 row in DESIGN.md Sect. 4 (the Lemma-5 Z-chain
// is solved exactly in Table 3) and the exact miniature of several
// other claims.
#include <cmath>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "markov/rbb_chain.hpp"
#include "markov/zchain_exact.hpp"
#include "runner/registry.hpp"
#include "support/bounds.hpp"
#include "support/stats.hpp"

namespace rbb::runner {

void register_exact_chain(Registry& registry) {
  Experiment e;
  e.name = "exact_chain";
  e.claim = "E6";
  e.title =
      "exact Markov-chain analysis of the RBB process (small n)";
  e.description =
      "Seven exact tables at small n: (1) the stationary law on the "
      "composition state space -- E[max load], P(legitimate), empty-bin "
      "fraction, detailed-balance residual (reversible only at n = 2), "
      "TV distance to the best product-form law, and the exact "
      "1/4-mixing time; (2) the Appendix-B arrival correlation for "
      "n = 2..6; (3) the exact Z-chain survival vs Lemma 5's e^{-t/144} "
      "bound with the exact E[tau]; (4) the m != n regimes (Sect. 5 "
      "open question); (5) topology comparison under the exact graph "
      "chain (Sect. 5 conjecture); (6) the exact worst-case convergence "
      "transient (Theorem 1 in miniature); (7) the exact single-queue "
      "stationary law of leaky bins [18].";
  e.run = [](const RunContext& ctx) {
    const std::uint32_t n_max = by_scale<std::uint32_t>(ctx.scale, 4, 6, 6);
    ResultSet rs;

    Table& t1 = rs.add_table(
        "E22_exact_chain",
        "exact stationary law: reversibility and product form fail",
        {"n", "states", "E[max load]", "P(legit b=4)", "empty frac",
         "db residual", "prod-form TV", "t_mix(1/4)"});
    for (std::uint32_t n = 2; n <= n_max; ++n) {
      const StateSpace space(n, n);
      const DenseMatrix p = build_rbb_transition_matrix(space);
      const std::vector<double> pi = stationary_distribution(p);
      const ExactFunctionals f = exact_functionals(space, pi);
      t1.row()
          .cell(static_cast<std::uint64_t>(n))
          .cell(static_cast<std::uint64_t>(space.size()))
          .cell(f.expected_max_load, 6)
          .cell(f.p_legitimate, 6)
          .cell(f.expected_empty_fraction, 6)
          .cell(detailed_balance_residual(p, pi), 8)
          .cell(product_form_distance(space, pi), 8)
          .cell(exact_mixing_time(space, p, pi, 0.25, 1000));
    }

    Table& t2 = rs.add_table(
        "E22_arrival_correlation", "Appendix B exactly, for n = 2 .. 6",
        {"n", "P(X1=0,X2=0)", "P(X1=0)*P(X2=0)", "excess", "neg. assoc.?"});
    for (std::uint32_t n = 2; n <= n_max; ++n) {
      const StateSpace space(n, n);
      const auto corr = exact_arrival_correlation(space, LoadConfig(n, 1));
      t2.row()
          .cell(static_cast<std::uint64_t>(n))
          .cell(corr.p_both_zero, 8)
          .cell(corr.p_first_zero * corr.p_second_zero, 8)
          .cell(corr.excess(), 8)
          .cell(std::string(corr.excess() > 0 ? "no (joint > product)"
                                              : "UNEXPECTED"));
    }

    const std::uint32_t zn = by_scale<std::uint32_t>(ctx.scale, 64, 256, 1024);
    Table& t3 = rs.add_table(
        "E22_zchain_exact",
        "exact Z-chain absorption vs the Lemma 5 tail bound",
        {"k", "E[tau] exact", "4k", "t probe", "P(tau>t) exact",
         "Lemma 5 bound", "bound/exact"});
    for (const std::uint64_t k : {2ull, 8ull, 32ull}) {
      const std::uint64_t probe = 10 * k + 80;
      // Long horizon so the truncated expectation sum converges (survival
      // decays at rate ~0.05/round, so 40k + 2000 rounds is far past it).
      const auto r = exact_zchain_survival(zn, k, 40 * k + 2000);
      const double exact_tail = r.survival[probe];
      const double bound = zchain_tail_bound(static_cast<double>(probe));
      t3.row()
          .cell(k)
          .cell(r.expected_absorption, 4)
          .cell(static_cast<std::uint64_t>(4 * k))
          .cell(probe)
          .cell(exact_tail, 8)
          .cell(bound, 8)
          .cell(exact_tail > 0 ? bound / exact_tail : HUGE_VAL, 2);
    }

    // ---- Table 4: the m != n regimes, exactly (Sect. 5 open qn) ----
    Table& t4 = rs.add_table(
        "E22_overload_exact",
        "stationary law under load factors m/n in [1/2, 4]",
        {"n", "m", "m/n", "states", "E[max load]", "empty frac",
         "P(M >= 2)"});
    const std::uint32_t base_n = 4;
    for (const std::uint32_t m : {2u, 4u, 6u, 8u, 12u, 16u}) {
      const StateSpace space(base_n, m);
      const DenseMatrix p = build_rbb_transition_matrix(space);
      const ExactFunctionals f =
          exact_functionals(space, stationary_distribution(p));
      t4.row()
          .cell(static_cast<std::uint64_t>(base_n))
          .cell(static_cast<std::uint64_t>(m))
          .cell(static_cast<double>(m) / base_n, 2)
          .cell(static_cast<std::uint64_t>(space.size()))
          .cell(f.expected_max_load, 6)
          .cell(f.expected_empty_fraction, 6)
          .cell(f.max_load_tail.size() > 2 ? f.max_load_tail[2] : 0.0, 6);
    }

    // ---- Table 5: topology comparison, exactly (Sect. 5 conjecture) ----
    // The graph chain routes each released ball to a uniform *neighbor*;
    // "clique" is the paper's abstract process (destinations include the
    // releasing bin itself).
    Table& t5 = rs.add_table(
        "E22_topology_exact",
        "stationary max load by topology (Sect. 5, exact)",
        {"topology", "n", "E[max load]", "empty frac", "P(M >= 3)"});
    for (std::uint32_t n = 4; n <= n_max; ++n) {
      const StateSpace space(n, n);
      struct Row {
        const char* name;
        DenseMatrix matrix;
      };
      const Graph cycle = make_cycle(n);
      const Graph path = make_path(n);
      const Graph star = make_star(n);
      const Graph complete = make_complete(n);
      std::vector<Row> rows;
      rows.push_back(
          {"clique (abstract)", build_rbb_transition_matrix(space)});
      rows.push_back({"complete graph",
                      build_graph_rbb_transition_matrix(space, complete)});
      rows.push_back(
          {"cycle", build_graph_rbb_transition_matrix(space, cycle)});
      rows.push_back(
          {"path", build_graph_rbb_transition_matrix(space, path)});
      rows.push_back(
          {"star", build_graph_rbb_transition_matrix(space, star)});
      for (const Row& r : rows) {
        const ExactFunctionals f =
            exact_functionals(space, stationary_distribution(r.matrix));
        t5.row()
            .cell(std::string(r.name))
            .cell(static_cast<std::uint64_t>(n))
            .cell(f.expected_max_load, 6)
            .cell(f.expected_empty_fraction, 6)
            .cell(f.max_load_tail.size() > 3 ? f.max_load_tail[3] : 0.0, 6);
      }
    }

    // ---- Table 6: the Theorem-1 convergence transient, exactly ----
    // Exact law of the process after t rounds from the all-in-one worst
    // case: E[max load] decays from n to the stationary value and
    // P(legitimate) climbs to 1 -- the exact miniature of E2's sweep.
    {
      const std::uint32_t n = n_max;
      const StateSpace space(n, n);
      const DenseMatrix p = build_rbb_transition_matrix(space);
      LoadConfig pile(n, 0);
      pile[0] = n;
      const std::vector<double> pi = stationary_distribution(p);
      const ExactFunctionals stat = exact_functionals(space, pi);
      // Note: beta log2 n exceeds m at this scale, so P(legitimate) is
      // trivially 1; the informative tail column is P(M >= 3).
      Table& t6 = rs.add_table(
          "E22_convergence_exact",
          "exact worst-case transient (Theorem 1 in miniature)",
          {"round t", "E[max load]", "empty frac", "P(M >= 3)",
           "TV to stationary"});
      std::vector<double> dist(space.size(), 0.0);
      dist[space.index_of(pile)] = 1.0;
      std::uint64_t t = 0;
      for (const std::uint64_t probe :
           {0ull, 1ull, 2ull, 4ull, 8ull, 16ull, 32ull}) {
        while (t < probe) {
          dist = p.left_multiply(dist);
          ++t;
        }
        const ExactFunctionals f = exact_functionals(space, dist);
        t6.row()
            .cell(probe)
            .cell(f.expected_max_load, 6)
            .cell(f.expected_empty_fraction, 6)
            .cell(f.max_load_tail.size() > 3 ? f.max_load_tail[3] : 0.0, 6)
            .cell(total_variation(dist, pi), 6);
      }
      t6.row()
          .cell(std::string("stationary"))
          .cell(stat.expected_max_load, 6)
          .cell(stat.expected_empty_fraction, 6)
          .cell(stat.max_load_tail.size() > 3 ? stat.max_load_tail[3] : 0.0,
                6)
          .cell(0.0, 6);
    }

    // ---- Table 7: leaky bins ([18]), the single queue exactly ----
    // Stationary law of one leaky bin (arrivals Bin(n, lambda/n), one
    // departure when non-empty).  Rate conservation forces P(empty) =
    // 1 - lambda exactly; the solved law confirms it and shows the queue
    // blow-up as lambda -> 1 (E16 sweeps the full n-bin system).
    {
      const std::uint32_t n = by_scale<std::uint32_t>(ctx.scale, 64, 256, 1024);
      Table& t7 = rs.add_table(
          "E22_leaky_exact",
          "exact single-queue stationary law of leaky bins [18]",
          {"lambda", "P(empty) exact", "1 - lambda", "mean queue",
           "q(1-1e-9)"});
      for (const double lambda : {0.5, 0.75, 0.9, 0.97}) {
        const LeakyQueueExact q = exact_leaky_queue_stationary(n, lambda);
        t7.row()
            .cell(lambda, 2)
            .cell(q.p_empty, 8)
            .cell(1.0 - lambda, 8)
            .cell(q.mean, 4)
            .cell(q.q999);
      }
    }
    return rs;
  };
  registry.add(std::move(e));
}

}  // namespace rbb::runner
