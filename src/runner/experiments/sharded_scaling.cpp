// Extra -- scaling of the sharded round kernel (src/par/): rounds/sec
// and ns/ball for one mega-n instance, versus the sequential kernels.
//
// This is the experiment behind BENCH_sharded.json, the repository's
// tracked perf baseline: run it with --format=json and compare the
// rounds_per_sec column across commits.  Three kernels are timed per n:
//
//   seq          the production sequential kernel (xoshiro draws),
//   seq-counter  the sequential reference making counter-RNG draws
//                (isolates the RNG-swap cost from the sharding win),
//   sharded xT   the two-phase kernel at each requested thread count.
#include <algorithm>
#include <chrono>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/process.hpp"
#include "par/reference.hpp"
#include "par/sharded_process.hpp"
#include "runner/registry.hpp"
#include "support/thread_pool.hpp"

namespace rbb::runner {

namespace {

/// Wall seconds for `rounds` rounds of `proc` after one untimed warm-up
/// round (faults in the arrays and sizes the scatter buffers).
template <typename Process>
double time_rounds(Process& proc, std::uint64_t rounds) {
  proc.step();
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t r = 0; r < rounds; ++r) proc.step();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

void register_sharded_scaling(Registry& registry) {
  Experiment e;
  e.name = "sharded_scaling";
  e.claim = "";
  e.title = "sharded round kernel: rounds/sec and ns/ball vs n x threads";
  e.description =
      "Times one instance of the load-only complete-graph process on "
      "three kernels: the sequential xoshiro kernel (core/), the "
      "sequential counter-RNG reference (par/reference.hpp, isolating "
      "the RNG swap), and the sharded two-phase kernel (par/) at "
      "several worker counts.  One round of one instance runs across "
      "all cores; the trajectory is bit-identical for every thread "
      "count and shard size.  n sweeps by scale up to 10^8 at "
      "--scale=mega; --threads fixes a single worker count, otherwise "
      "{1, 4, max} are measured.  The JSON output of this experiment "
      "is the tracked perf baseline BENCH_sharded.json.  Single-"
      "instance measurement: --trials is ignored.";
  e.sharded_capable = true;
  e.params = {
      {"rounds", ParamSpec::Type::kU64, "0",
       "measured rounds per point (0 = auto, ~6.4e7 bin-visits per "
       "point, clamped to [2, 32])"},
      {"shard-size", ParamSpec::Type::kU64, "0",
       "bins per shard for the sharded kernel (0 = 16384)"},
  };
  e.run = [](const RunContext& ctx) {
    const std::vector<std::uint64_t> ns = by_scale<std::vector<std::uint64_t>>(
        ctx.scale, {100000}, {1000000, 10000000}, {1000000, 10000000},
        {1000000, 10000000, 100000000});
    const auto shard_size =
        static_cast<std::uint32_t>(ctx.params.u32("shard-size"));

    // Worker counts: an explicit --threads measures exactly that;
    // otherwise 1, 4, and the machine maximum (deduplicated).
    std::vector<unsigned> thread_grid;
    const unsigned hw = ThreadPool::default_thread_count();
    if (ctx.threads() != 0) {
      thread_grid.push_back(ctx.threads());
    } else {
      for (const unsigned t : {1u, 4u, hw}) {
        if (std::find(thread_grid.begin(), thread_grid.end(), t) ==
            thread_grid.end()) {
          thread_grid.push_back(t);
        }
      }
    }

    ResultSet rs;
    Table& table = rs.add_table(
        "sharded_scaling",
        "rounds/sec and ns/ball: sequential vs sharded kernels",
        {"n", "backend", "threads", "rounds", "wall_s", "rounds_per_sec",
         "ns_per_ball", "speedup_vs_seq"});

    for (const std::uint64_t n64 : ns) {
      const auto n = static_cast<std::uint32_t>(n64);
      const std::uint64_t rounds =
          ctx.params.u64("rounds") != 0
              ? ctx.params.u64("rounds")
              : std::clamp<std::uint64_t>(64000000 / n64, 2, 32);
      const double balls = static_cast<double>(n64) *
                           static_cast<double>(rounds);

      auto emit = [&](const std::string& backend, unsigned threads,
                      double wall, double seq_wall) {
        table.row()
            .cell(n64)
            .cell(backend)
            .cell(std::uint64_t{threads})
            .cell(rounds)
            .cell(wall, 4)
            .cell(static_cast<double>(rounds) / wall, 2)
            .cell(wall / balls * 1e9, 2)
            .cell(seq_wall / wall, 2);
      };

      Rng cfg_rng(ctx.seed());
      double seq_wall = 0;
      {
        RepeatedBallsProcess proc(
            make_config(InitialConfig::kOnePerBin, n, n, cfg_rng),
            Rng(ctx.seed(), 1));
        seq_wall = time_rounds(proc, rounds);
        emit("seq", 1, seq_wall, seq_wall);
      }
      {
        par::SequentialCounterProcess proc(
            make_config(InitialConfig::kOnePerBin, n, n, cfg_rng),
            ctx.seed());
        emit("seq-counter", 1, time_rounds(proc, rounds), seq_wall);
      }
      for (const unsigned threads : thread_grid) {
        par::ShardedRepeatedBallsProcess proc(
            make_config(InitialConfig::kOnePerBin, n, n, cfg_rng),
            ctx.seed(), par::ShardedOptions{threads, shard_size});
        emit("sharded", threads, time_rounds(proc, rounds), seq_wall);
      }
    }

    rs.note("hardware threads: " + std::to_string(hw) +
            " (ThreadPool::default_thread_count; RBB_THREADS overrides)");
    rs.note("one-per-bin start: every bin releases each round, the "
            "max-throughput regime; ns_per_ball = wall / (rounds * n)");
    rs.note("sharded trajectories are bit-identical across the threads "
            "column by construction (tests/par/); timings, not results, "
            "vary with the worker count");
    return rs;
  };
  registry.add(std::move(e));
}

}  // namespace rbb::runner
