#include "support/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace rbb {

void OnlineMoments::merge(const OnlineMoments& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double OnlineMoments::stddev() const noexcept { return std::sqrt(variance()); }

double OnlineMoments::stderror() const noexcept {
  return count_ > 1 ? stddev() / std::sqrt(static_cast<double>(count_)) : 0.0;
}

double OnlineMoments::ci95_halfwidth() const noexcept {
  return 1.959963984540054 * stderror();
}

void Histogram::add(std::uint64_t value, std::uint64_t weight) {
  if (value >= counts_.size()) counts_.resize(value + 1, 0);
  counts_[value] += weight;
  total_ += weight;
}

void Histogram::merge(const Histogram& other) {
  if (other.counts_.size() > counts_.size()) {
    counts_.resize(other.counts_.size(), 0);
  }
  for (std::size_t v = 0; v < other.counts_.size(); ++v) {
    counts_[v] += other.counts_[v];
  }
  total_ += other.total_;
}

std::uint64_t Histogram::count_at(std::uint64_t value) const noexcept {
  return value < counts_.size() ? counts_[value] : 0;
}

std::uint64_t Histogram::max_value() const noexcept {
  for (std::size_t v = counts_.size(); v > 0; --v) {
    if (counts_[v - 1] != 0) return v - 1;
  }
  return 0;
}

std::uint64_t Histogram::min_value() const noexcept {
  for (std::size_t v = 0; v < counts_.size(); ++v) {
    if (counts_[v] != 0) return v;
  }
  return 0;
}

double Histogram::mean() const noexcept {
  if (total_ == 0) return 0.0;
  double sum = 0.0;
  for (std::size_t v = 0; v < counts_.size(); ++v) {
    sum += static_cast<double>(v) * static_cast<double>(counts_[v]);
  }
  return sum / static_cast<double>(total_);
}

std::uint64_t Histogram::quantile(double q) const {
  if (total_ == 0) throw std::logic_error("Histogram::quantile: empty");
  if (!(q >= 0.0 && q <= 1.0)) {
    throw std::invalid_argument("Histogram::quantile: q outside [0, 1]");
  }
  const double target = q * static_cast<double>(total_);
  std::uint64_t cum = 0;
  for (std::size_t v = 0; v < counts_.size(); ++v) {
    cum += counts_[v];
    if (static_cast<double>(cum) >= target && cum > 0) return v;
  }
  return max_value();
}

double Histogram::tail_fraction(std::uint64_t value) const noexcept {
  if (total_ == 0) return 0.0;
  std::uint64_t above = 0;
  for (std::size_t v = counts_.size(); v > value; --v) above += counts_[v - 1];
  return static_cast<double>(above) / static_cast<double>(total_);
}

double total_variation_from_uniform(
    const std::vector<std::uint64_t>& counts) {
  if (counts.empty()) {
    throw std::invalid_argument("total_variation_from_uniform: empty");
  }
  std::uint64_t total = 0;
  for (const auto c : counts) total += c;
  if (total == 0) {
    throw std::invalid_argument("total_variation_from_uniform: zero total");
  }
  const double uniform = 1.0 / static_cast<double>(counts.size());
  double sum = 0.0;
  for (const auto c : counts) {
    sum += std::abs(static_cast<double>(c) / static_cast<double>(total) -
                    uniform);
  }
  return 0.5 * sum;
}

double total_variation(const std::vector<std::uint64_t>& a,
                       const std::vector<std::uint64_t>& b) {
  if (a.empty() || a.size() != b.size()) {
    throw std::invalid_argument("total_variation: size mismatch");
  }
  std::uint64_t ta = 0;
  std::uint64_t tb = 0;
  for (const auto c : a) ta += c;
  for (const auto c : b) tb += c;
  if (ta == 0 || tb == 0) {
    throw std::invalid_argument("total_variation: zero total");
  }
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    sum += std::abs(static_cast<double>(a[i]) / static_cast<double>(ta) -
                    static_cast<double>(b[i]) / static_cast<double>(tb));
  }
  return 0.5 * sum;
}

double median(std::vector<double> values) { return quantile(std::move(values), 0.5); }

double quantile(std::vector<double> values, double q) {
  if (values.empty()) throw std::logic_error("quantile: empty vector");
  if (!(q >= 0.0 && q <= 1.0)) {
    throw std::invalid_argument("quantile: q outside [0, 1]");
  }
  const auto rank = static_cast<std::size_t>(
      q * static_cast<double>(values.size() - 1));
  std::nth_element(values.begin(),
                   values.begin() + static_cast<std::ptrdiff_t>(rank),
                   values.end());
  return values[rank];
}

}  // namespace rbb
