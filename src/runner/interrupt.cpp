#include "runner/interrupt.hpp"

#include <csignal>

namespace rbb::runner::interrupt {

namespace {

volatile std::sig_atomic_t g_interrupted = 0;

void on_sigint(int) { g_interrupted = 1; }

}  // namespace

void install() {
  struct sigaction sa = {};
  sa.sa_handler = on_sigint;
  sigemptyset(&sa.sa_mask);
  // One-shot: the flag covers the graceful path; a second ^C reverts
  // to the default disposition and terminates immediately.
  sa.sa_flags = SA_RESETHAND;
  sigaction(SIGINT, &sa, nullptr);
}

bool interrupted() noexcept { return g_interrupted != 0; }

}  // namespace rbb::runner::interrupt
