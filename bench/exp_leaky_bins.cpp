// E16 -- leaky bins lambda sweep.  Back-compat shim: the experiment now lives in the
// registry (src/runner/experiments/leaky_bins.cpp); this binary behaves like
// `rbb run leaky_bins` with table output, honoring RBB_BENCH_SCALE and
// RBB_CSV_DIR as it always did.
#include "runner/legacy.hpp"

int main(int argc, char** argv) {
  return rbb::runner::legacy_bench_main("leaky_bins", argc, argv);
}
