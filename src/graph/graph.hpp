// Immutable graph substrate for the general-topology experiments.
//
// The paper analyses the complete graph K_n (where repeated balls-into-bins
// equals parallel random walks with one-token-per-round queues) and poses
// the general-graph case as an open question (Sect. 5).  This module
// provides the topologies the open-question experiment E14 sweeps: cycles,
// 2-D tori, hypercubes, random d-regular graphs (configuration model),
// Erdos-Renyi G(n,p), stars and paths, all as an immutable CSR structure
// with O(1) uniform-neighbor sampling.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "support/rng.hpp"

namespace rbb {

/// Immutable undirected graph in compressed-sparse-row form.  Nodes are
/// 0..n-1; each undirected edge appears in both incidence lists.
class Graph {
 public:
  /// Builds from an edge list (endpoints in [0, n)); self-loops and
  /// duplicate edges are rejected with std::invalid_argument.
  Graph(std::uint32_t node_count,
        const std::vector<std::pair<std::uint32_t, std::uint32_t>>& edges);

  [[nodiscard]] std::uint32_t node_count() const noexcept { return n_; }
  [[nodiscard]] std::uint64_t edge_count() const noexcept {
    return neighbors_.size() / 2;
  }
  [[nodiscard]] std::uint32_t degree(std::uint32_t u) const {
    return offsets_[u + 1] - offsets_[u];
  }
  [[nodiscard]] std::span<const std::uint32_t> neighbors(
      std::uint32_t u) const {
    return {neighbors_.data() + offsets_[u], degree(u)};
  }

  /// Uniform random neighbor of u.  Requires degree(u) > 0.
  [[nodiscard]] std::uint32_t sample_neighbor(std::uint32_t u,
                                              Rng& rng) const {
    const auto nbrs = neighbors(u);
    return nbrs[rng.index(static_cast<std::uint32_t>(nbrs.size()))];
  }

  [[nodiscard]] bool has_edge(std::uint32_t u, std::uint32_t v) const;
  [[nodiscard]] std::uint32_t min_degree() const;
  [[nodiscard]] std::uint32_t max_degree() const;
  /// True when every node has the same degree.
  [[nodiscard]] bool is_regular() const {
    return min_degree() == max_degree();
  }
  /// BFS connectivity from node 0 (false for the empty graph on n >= 2).
  [[nodiscard]] bool is_connected() const;
  /// BFS eccentricity maximised over sources; O(n * m) -- test-size only.
  [[nodiscard]] std::uint32_t diameter() const;

 private:
  std::uint32_t n_;
  std::vector<std::uint32_t> offsets_;   // size n+1
  std::vector<std::uint32_t> neighbors_; // size 2 * edge_count
};

/// -- Generators ------------------------------------------------------------

/// Cycle C_n (n >= 3).
[[nodiscard]] Graph make_cycle(std::uint32_t n);

/// Path P_n (n >= 2).
[[nodiscard]] Graph make_path(std::uint32_t n);

/// Complete graph K_n as an explicit CSR (n >= 2).  For the RBB process on
/// K_n prefer the implicit clique topology (core module); this builder is
/// for cross-validating the two representations at small n.
[[nodiscard]] Graph make_complete(std::uint32_t n);

/// rows x cols torus (wrap-around grid, 4-regular); rows, cols >= 3.
[[nodiscard]] Graph make_torus(std::uint32_t rows, std::uint32_t cols);

/// Hypercube Q_dim on 2^dim nodes (dim >= 1, dim-regular).
[[nodiscard]] Graph make_hypercube(std::uint32_t dim);

/// Star K_{1,n-1}: node 0 is the hub (n >= 2).
[[nodiscard]] Graph make_star(std::uint32_t n);

/// Lollipop graph: a clique on ceil(n/2) nodes with a path of the
/// remaining nodes attached (n >= 4).  The classic worst case for random-
/// walk cover time (Theta(n^3) single-walker).
[[nodiscard]] Graph make_lollipop(std::uint32_t n);

/// Barbell: two cliques of ceil(n/3) nodes joined by a path (n >= 6).
[[nodiscard]] Graph make_barbell(std::uint32_t n);

/// Complete bipartite K_{a,b} (a, b >= 1).
[[nodiscard]] Graph make_complete_bipartite(std::uint32_t a, std::uint32_t b);

/// Complete binary tree on n nodes, heap-indexed (n >= 2).
[[nodiscard]] Graph make_binary_tree(std::uint32_t n);

/// Random d-regular simple graph via Steger-Wormald pairing (n*d even,
/// d < n).  Near-uniform for d = o(n^{1/3}); O(n*d) expected time.
[[nodiscard]] Graph make_random_regular(std::uint32_t n, std::uint32_t d,
                                        Rng& rng);

/// Erdos-Renyi G(n, p) via geometric edge skipping, O(n + m).
[[nodiscard]] Graph make_gnp(std::uint32_t n, double p, Rng& rng);

/// Named lookup used by the CLI of examples/benches: "cycle", "path",
/// "complete", "torus" (~sqrt(n) x ~sqrt(n)), "hypercube" (largest
/// dimension with 2^dim <= n), "star", "regular<d>" e.g. "regular8".
/// Throws std::invalid_argument for unknown names.
[[nodiscard]] Graph make_named_graph(const std::string& name, std::uint32_t n,
                                     Rng& rng);

}  // namespace rbb
