// Benchmark scale selection.
//
// The experiment benches honor the RBB_BENCH_SCALE environment variable so
// the default `for b in build/bench/*; do $b; done` loop finishes in
// minutes while still exercising every experiment:
//   smoke   -- minimal sizes, seconds per bench (CI sanity),
//   default -- the sizes of the experiment map (DESIGN.md Sect. 4),
//   paper   -- full sweeps matching the asymptotic regime of the theorems,
//   mega    -- n >= 10^8 single instances for the sharded backend
//              (src/par/); experiments without mega-specific sizes fall
//              back to their paper sweeps.
#pragma once

#include <cstdint>
#include <string>

namespace rbb {

enum class BenchScale { kSmoke, kDefault, kPaper, kMega };

/// Reads RBB_BENCH_SCALE (case-insensitive: "smoke", "default", "paper",
/// "mega"); anything else / unset yields kDefault.
[[nodiscard]] BenchScale bench_scale();

[[nodiscard]] std::string to_string(BenchScale scale);

/// Picks one of three values by scale; kMega falls back to the paper
/// value (use the four-argument overload to give mega its own sizes).
template <typename T>
[[nodiscard]] T by_scale(BenchScale scale, T smoke, T dflt, T paper) {
  switch (scale) {
    case BenchScale::kSmoke: return smoke;
    case BenchScale::kPaper: return paper;
    case BenchScale::kMega: return paper;
    case BenchScale::kDefault: break;
  }
  return dflt;
}

/// Picks one of four values by scale.
template <typename T>
[[nodiscard]] T by_scale(BenchScale scale, T smoke, T dflt, T paper, T mega) {
  return scale == BenchScale::kMega ? mega
                                    : by_scale(scale, smoke, dflt, paper);
}

/// Directory for CSV mirrors of the experiment tables (RBB_CSV_DIR), empty
/// if unset.
[[nodiscard]] std::string csv_dir();

}  // namespace rbb
