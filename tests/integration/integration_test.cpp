// Cross-module integration tests: the full pipelines a bench binary runs,
// exercised end-to-end at reduced scale, plus cross-validation between
// independent implementations of the same quantity.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "analysis/experiments.hpp"
#include "baselines/independent_walks.hpp"
#include "baselines/oneshot.hpp"
#include "core/process.hpp"
#include "core/token_process.hpp"
#include "coupling/coupling.hpp"
#include "graph/graph.hpp"
#include "support/bounds.hpp"
#include "tetris/tetris.hpp"
#include "traversal/traversal.hpp"

namespace rbb {
namespace {

TEST(Integration, LoadOnlyAndTokenProcessAgreeInDistribution) {
  // The load-only kernel and the token process simulate the same Markov
  // chain on loads; their equilibrium empty-bin fractions must agree.
  constexpr std::uint32_t n = 256;
  constexpr int kRounds = 2000;

  Rng rng_a(99);
  RepeatedBallsProcess loads(
      make_config(InitialConfig::kOnePerBin, n, n, rng_a), rng_a);
  double empty_a = 0.0;
  for (int t = 0; t < kRounds; ++t) {
    empty_a += static_cast<double>(loads.step().empty_bins);
  }

  std::vector<std::uint32_t> placement(n);
  for (std::uint32_t i = 0; i < n; ++i) placement[i] = i;
  TokenProcess::Options o;
  o.track_visits = false;
  TokenProcess tokens(n, std::move(placement), o, Rng(98));
  double empty_b = 0.0;
  for (int t = 0; t < kRounds; ++t) {
    tokens.step();
    empty_b += static_cast<double>(tokens.empty_bins());
  }
  EXPECT_NEAR(empty_a / kRounds / n, empty_b / kRounds / n, 0.02);
}

TEST(Integration, CliqueGraphMatchesImplicitClique) {
  // RBB on the explicit K_n CSR graph vs the implicit clique: the
  // destination law differs (neighbors exclude the source), but the
  // qualitative equilibrium (empty fraction, window max) must be close.
  constexpr std::uint32_t n = 128;
  const Graph k = make_complete(n);
  constexpr int kRounds = 1500;

  auto equilibrium = [&](const Graph* g, std::uint64_t seed) {
    Rng rng(seed);
    RepeatedBallsProcess proc(
        make_config(InitialConfig::kOnePerBin, n, n, rng), g, rng);
    double empty = 0.0;
    std::uint32_t wmax = 0;
    for (int t = 0; t < kRounds; ++t) {
      const RoundStats s = proc.step();
      empty += static_cast<double>(s.empty_bins);
      wmax = std::max(wmax, s.max_load);
    }
    return std::make_pair(empty / kRounds / n, wmax);
  };
  const auto [empty_implicit, max_implicit] = equilibrium(nullptr, 5);
  const auto [empty_explicit, max_explicit] = equilibrium(&k, 6);
  EXPECT_NEAR(empty_implicit, empty_explicit, 0.03);
  EXPECT_NEAR(static_cast<double>(max_implicit),
              static_cast<double>(max_explicit), 5.0);
}

TEST(Integration, CoupledOriginalMatchesStandaloneStatistics) {
  // The original-process marginal inside the coupling is the same chain
  // as a standalone RepeatedBallsProcess; equilibrium empty fractions of
  // the two implementations must agree.
  constexpr std::uint32_t n = 256;
  constexpr int kRounds = 1500;

  Rng rng_a(7);
  LoadConfig start = make_config(InitialConfig::kRandom, n, n, rng_a);
  if (empty_bins(start) < n / 4) {
    RepeatedBallsProcess warm(std::move(start), rng_a);
    warm.step();
    start = warm.loads();
  }

  CoupledProcesses coupled(start, Rng(8));
  double empty_coupled = 0.0;
  for (int t = 0; t < kRounds; ++t) {
    coupled.step();
    empty_coupled += static_cast<double>(empty_bins(coupled.original_loads()));
  }

  RepeatedBallsProcess standalone(start, Rng(9));
  double empty_standalone = 0.0;
  for (int t = 0; t < kRounds; ++t) {
    empty_standalone += static_cast<double>(standalone.step().empty_bins);
  }
  EXPECT_NEAR(empty_coupled / kRounds / n, empty_standalone / kRounds / n,
              0.02);
}

TEST(Integration, TraversalMinProgressConsistentWithProgressDriver) {
  // Two independent code paths measure FIFO progress; both must satisfy
  // the Sect. 4 lower bound shape min_progress >= ~t / (c log n).
  ProgressParams p;
  p.n = 128;
  p.rounds = 1024;
  p.trials = 2;
  const ProgressResult r = run_progress(p);

  TraversalParams tp;
  tp.n = 128;
  tp.max_rounds = 1024;
  const TraversalResult tr = run_traversal(tp, 13);
  const double per_round_a = r.min_progress.mean() / 1024.0;
  const double per_round_b =
      static_cast<double>(tr.min_progress) / static_cast<double>(tr.rounds_run);
  EXPECT_NEAR(per_round_a, per_round_b, 0.25);
  EXPECT_GT(per_round_b, 0.05);
}

TEST(Integration, StabilityWindowConsistentWithSqrtTSeries) {
  // run_sqrt_t's final running max is the same observable as
  // run_stability's window max at the same horizon; cross-validate.
  constexpr std::uint32_t n = 128;
  constexpr std::uint64_t horizon = 2048;

  StabilityParams sp;
  sp.n = n;
  sp.rounds = horizon;
  sp.trials = 4;
  sp.seed = 21;
  const StabilityResult sr = run_stability(sp);

  SqrtTParams qp;
  qp.n = n;
  qp.checkpoints = {horizon};
  qp.trials = 4;
  qp.seed = 21;
  const SqrtTResult qr = run_sqrt_t(qp);
  // Same seeds, same trial streams, same process: identical results.
  EXPECT_DOUBLE_EQ(qr.running_max_mean[0], sr.window_max.mean());
}

TEST(Integration, OneShotLowerBoundsRepeatedWindowMax) {
  // Every round of RBB is at least as loaded as a fresh one-shot throw is
  // on average over a window -- the Theta(log n / log log n) lower bound
  // transfers.  Compare window maxima: repeated >= single-round one-shot.
  constexpr std::uint32_t n = 1024;
  Rng rng(31);
  const std::uint32_t oneshot = oneshot_max_load(n, n, rng);

  StabilityParams sp;
  sp.n = n;
  sp.rounds = 2000;
  sp.trials = 2;
  sp.seed = 32;
  const StabilityResult sr = run_stability(sp);
  EXPECT_GE(sr.window_max.mean() + 1.0, static_cast<double>(oneshot));
}

TEST(Integration, FaultInjectionRoundTripsThroughProcess) {
  // apply_fault -> reassign -> convergence: the full Sect. 4.1 pipeline.
  constexpr std::uint32_t n = 256;
  Rng rng(41);
  RepeatedBallsProcess proc(
      make_config(InitialConfig::kOnePerBin, n, n, rng), rng);
  proc.run(100);
  EXPECT_TRUE(proc.is_legitimate(4.0));

  Rng fault_rng(42);
  proc.reassign(apply_fault(FaultStrategy::kAllToOne, n, n, proc.loads(),
                            fault_rng));
  EXPECT_FALSE(proc.is_legitimate(4.0));

  // Theorem 1: back to legitimate within O(n) rounds.
  std::uint64_t t = 0;
  while (!proc.is_legitimate(4.0) && t < 8ull * n) {
    proc.step();
    ++t;
  }
  EXPECT_TRUE(proc.is_legitimate(4.0));
  EXPECT_LE(t, 2ull * n);
}

TEST(Integration, TetrisDominatesIndependentlyMeasuredRBB) {
  // Statistical (not coupled) domination: the Tetris window max across
  // trials should upper-bound the RBB window max across trials, because
  // Tetris has more arrivals than RBB has departures (3n/4 vs ~0.63n).
  StabilityParams p;
  p.n = 256;
  p.rounds = 2000;
  p.trials = 3;
  p.seed = 51;
  const StabilityResult rbb_r = run_stability(p);
  p.process = StabilityProcess::kTetris;
  p.start = InitialConfig::kRandom;  // Tetris wants >= n/4 empty bins
  const StabilityResult tetris_r = run_stability(p);
  EXPECT_GE(tetris_r.window_max.mean() + 2.0, rbb_r.window_max.mean());
}

}  // namespace
}  // namespace rbb
