// E19 -- Sect. 1.1: "if the process is stable, every ball can be delayed
// for at most O(log n) rounds before leaving a node."
//
// Table: per n and queue policy, the pooled waiting-time distribution of
// every token release (p50 / p99 / p99.9 / per-trial max), against the
// O(log n) scale.  Under FIFO the maximum delay is bounded by the window
// maximum load; LIFO has no such per-token guarantee (a buried token can
// starve while the bin stays busy) and its tail visibly fattens.
#include "analysis/experiments.hpp"
#include "bench/bench_common.hpp"
#include "support/bounds.hpp"

int main(int argc, char** argv) {
  using namespace rbb;
  Cli cli = bench::make_cli(
      "E19: token waiting times are O(log n) under FIFO (Sect. 1.1)");
  if (!cli.parse(argc, argv)) return 0;

  const BenchScale scale = bench_scale();
  const std::uint32_t trials = bench::trials_for(cli, scale, 2, 4, 8);
  const std::uint64_t wf = by_scale<std::uint64_t>(scale, 8, 16, 48);

  Table table({"n", "policy", "releases", "mean delay", "p50", "p99",
               "p99.9", "max (mean over trials)", "max / log2 n"});
  for (const std::uint32_t n : bench::n_sweep(scale)) {
    for (const QueuePolicy policy :
         {QueuePolicy::kFifo, QueuePolicy::kRandom, QueuePolicy::kLifo}) {
      DelayParams p;
      p.n = n;
      p.rounds = wf * n;
      p.trials = trials;
      p.seed = cli.u64("seed");
      p.policy = policy;
      const DelayResult r = run_delays(p);
      table.row()
          .cell(std::uint64_t{n})
          .cell(std::string(to_string(policy)))
          .cell(r.delays.total())
          .cell(r.mean_delay, 3)
          .cell(r.p50)
          .cell(r.p99)
          .cell(r.p999)
          .cell(r.max_delay.mean(), 1)
          .cell(r.max_delay.mean() / log2n(n), 3);
    }
  }
  bench::emit(table, "E19_delays",
              "per-release waiting times: O(log n) max under FIFO", scale);
  return 0;
}
