// Identity-tracking repeated balls-into-bins: tokens, queues and policies.
//
// The load-only kernel (process.hpp) suffices for Theorem 1, which is
// oblivious to the queueing strategy.  Everything in Sect. 4 of the paper
// -- token progress, parallel cover time, the multi-token traversal
// protocol and its adversarial variant -- needs per-ball identities and an
// explicit queue discipline.  This class simulates n bins and m tokens
// where each non-empty bin releases one token per round according to a
// QueuePolicy and the released token moves u.a.r. (complete graph) or to a
// uniform neighbor (general graph).
//
// Per-token instrumentation (optional, enabled with track_visits):
//   * progress: number of random-walk steps the token has performed,
//   * visited set + cover round: first round by which the token has
//     visited every bin (Corollary 1's parallel cover time).
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <vector>

#include "graph/graph.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"

namespace rbb {

/// Which token a non-empty bin releases each round (paper: "according to
/// some fixed strategy (random, FIFO, etc)").
enum class QueuePolicy {
  kFifo,    // oldest token in the bin (the Sect. 4 traversal strategy)
  kLifo,    // newest token
  kRandom,  // uniform random token from the bin
};

[[nodiscard]] const char* to_string(QueuePolicy policy);
[[nodiscard]] QueuePolicy queue_policy_from_string(const std::string& s);

/// One token per bin, token i starting in bin i: the canonical
/// starting placement of the progress / delay / cover experiments and
/// the token perf benches.
[[nodiscard]] inline std::vector<std::uint32_t> identity_placement(
    std::uint32_t n) {
  std::vector<std::uint32_t> placement(n);
  for (std::uint32_t i = 0; i < n; ++i) placement[i] = i;
  return placement;
}

/// A bin's token queue: contiguous storage with an amortised-O(1) head.
class BallQueue {
 public:
  void push(std::uint32_t token) { items_.push_back(token); }
  [[nodiscard]] bool empty() const noexcept { return head_ == items_.size(); }
  [[nodiscard]] std::size_t size() const noexcept {
    return items_.size() - head_;
  }
  /// Removes and returns one token per `policy`.  Requires !empty().
  std::uint32_t pop(QueuePolicy policy, Rng& rng);
  void clear() noexcept {
    items_.clear();
    head_ = 0;
  }
  /// Live tokens in queue order (oldest first under FIFO pops; the
  /// random policy's swap-remove perturbs the interior).  Contiguous
  /// view, no copy; invalidated by any mutation.
  [[nodiscard]] const std::uint32_t* begin() const noexcept {
    return items_.data() + head_;
  }
  [[nodiscard]] const std::uint32_t* end() const noexcept {
    return items_.data() + items_.size();
  }
  /// Tokens currently enqueued, in queue order (testing / inspection;
  /// allocates -- invariant checks iterate begin()/end() instead).
  [[nodiscard]] std::vector<std::uint32_t> snapshot() const {
    return {begin(), end()};
  }
  /// Heap bytes currently held, dead prefix and spare capacity
  /// included (compaction tests / memory accounting).
  [[nodiscard]] std::size_t capacity_bytes() const noexcept {
    return items_.capacity() * sizeof(std::uint32_t);
  }

 private:
  /// Dead slots tolerated before a compaction is considered at all;
  /// below this the erase would cost more than the memory it frees.
  static constexpr std::size_t kMinDeadSlots = 32;

  void maybe_compact();

  std::vector<std::uint32_t> items_;
  std::size_t head_ = 0;
};

/// Identity-tracking repeated balls-into-bins / multi-token traversal.
class TokenProcess {
 public:
  static constexpr std::uint64_t kNotCovered =
      std::numeric_limits<std::uint64_t>::max();

  struct Options {
    QueuePolicy policy = QueuePolicy::kFifo;
    const Graph* graph = nullptr;  // nullptr = complete graph
    bool track_visits = true;      // per-token visited bitsets (m*n bits)
    bool track_delays = false;     // per-release waiting-time histogram
  };

  /// `start_bin[i]` is the initial bin of token i; bins are [0, bins).
  /// Initial placement counts as a visit.  Queue order of co-located
  /// tokens is by token id (the adversary of Sect. 4.1 controls placement
  /// but the analysis is oblivious to intra-bin order).
  TokenProcess(std::uint32_t bins, std::vector<std::uint32_t> start_bin,
               Options options, Rng rng);

  /// One synchronous round: every non-empty bin releases one token.
  void step();
  /// Runs `rounds` rounds.
  void run(std::uint64_t rounds);
  /// Runs until every token has covered all bins or `max_rounds` elapse;
  /// returns the global cover time (rounds from construction) if reached.
  /// Requires track_visits.
  std::optional<std::uint64_t> run_until_covered(std::uint64_t max_rounds);

  [[nodiscard]] std::uint32_t bin_count() const noexcept { return bins_; }
  [[nodiscard]] std::uint32_t token_count() const noexcept {
    return static_cast<std::uint32_t>(token_bin_.size());
  }
  [[nodiscard]] std::uint64_t round() const noexcept { return round_; }

  /// Load of bin u (queue length).
  [[nodiscard]] std::uint32_t load(std::uint32_t u) const {
    return static_cast<std::uint32_t>(queues_[u].size());
  }
  /// Maximum load over all bins; O(n).
  [[nodiscard]] std::uint32_t max_load() const;
  /// Number of empty bins; O(n).
  [[nodiscard]] std::uint32_t empty_bins() const;
  /// Current bin of token i.
  [[nodiscard]] std::uint32_t token_bin(std::uint32_t token) const {
    return token_bin_[token];
  }
  /// Number of walk steps token i has performed (times it was released).
  [[nodiscard]] std::uint64_t progress(std::uint32_t token) const {
    return progress_[token];
  }
  /// Minimum progress over all tokens (the Sect. 4 guarantee is
  /// Omega(t / log n) for every token under FIFO).
  [[nodiscard]] std::uint64_t min_progress() const;

  /// Distinct bins token i has visited.  Requires track_visits.
  [[nodiscard]] std::uint32_t visited_count(std::uint32_t token) const;
  /// Round by which token i had visited all bins, or kNotCovered.
  [[nodiscard]] std::uint64_t cover_round(std::uint32_t token) const {
    return cover_round_[token];
  }
  /// True when every token has visited every bin.
  [[nodiscard]] bool all_covered() const noexcept {
    return covered_tokens_ == token_count();
  }
  /// max over tokens of cover_round (kNotCovered unless all_covered()).
  [[nodiscard]] std::uint64_t global_cover_time() const;

  /// Waiting-time histogram: each released token contributes the number
  /// of complete rounds it spent enqueued before the releasing round
  /// (0 = released on its first opportunity).  Under FIFO the paper's
  /// stability theorem bounds every delay by O(log n) w.h.p. (Sect. 1.1:
  /// "every ball can be delayed for at most O(log n) rounds").
  /// Requires track_delays.
  [[nodiscard]] const Histogram& delay_histogram() const;

  /// Adversarial reassignment (Sect. 4.1): every token i is moved to
  /// `new_bin[i]`; queues are rebuilt in token-id order.  Progress and
  /// visited sets persist (the reassigned position counts as a visit).
  void reassign(const std::vector<std::uint32_t>& new_bin);

  /// Testing hook: verifies queue/token-position consistency; throws
  /// std::logic_error on violation.
  void check_invariants() const;

 private:
  void place(std::uint32_t token, std::uint32_t bin);
  void mark_visited(std::uint32_t token, std::uint32_t bin);

  std::uint32_t bins_;
  Options options_;
  Rng rng_;
  std::vector<BallQueue> queues_;
  std::vector<std::uint32_t> token_bin_;
  std::vector<std::uint64_t> progress_;
  std::uint64_t round_ = 0;

  // Visit tracking (empty when !options_.track_visits).
  std::size_t words_per_token_ = 0;
  std::vector<std::uint64_t> visited_;
  std::vector<std::uint32_t> visited_count_;
  std::vector<std::uint64_t> cover_round_;
  std::uint32_t covered_tokens_ = 0;

  // Delay tracking (empty when !options_.track_delays).
  std::vector<std::uint64_t> arrival_round_;
  Histogram delays_;

  // Per-round scratch: (token, destination) pairs.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> moves_;
};

}  // namespace rbb
