// The process core: ONE round-kernel template over the policy matrix
// (variant x execution x RNG stream) -- DESIGN.md Sect. 5.
//
// Every load-shaped process in the repository is an instantiation of
// BallProcessCore:
//
//   variant (variants.hpp)   LoadOnly | DChoices | Tetris | Leaky,
//                            each carrying its RNG stream policy
//                            (SequentialStream xoshiro256++ or
//                            CounterStream Philox4x32),
//   execution (exec.hpp)     SequentialExecution (in-place walk) or
//                            ShardedExecution (two-phase striped
//                            throw/commit scatter).
//
// The sequential instantiations reproduce the historical hand-written
// kernels draw-for-draw (RepeatedBallsProcess, TetrisProcess,
// LeakyBinsProcess, RepeatedDChoicesProcess are thin constructor
// adapters over this template); the sharded instantiations execute one
// round of one instance across all cores and are bit-identical to their
// sequential counter-stream siblings for every thread count and shard
// size (pinned by tests/par/).  The static_assert below is the whole
// compatibility rule: sharded execution requires a schedule-free
// stream.
//
// Round anatomy (sequential):
//   1. departure walk  -- every non-empty bin releases one ball;
//      relaunch variants collect destinations (stream-dependent: the
//      xoshiro clique path block-draws after the walk so the generator
//      state stays in registers; the counter path banks the releasing
//      bins and materializes their destinations with one gathered
//      draw plane -- support/draw_plane.hpp), refill variants discard
//      the ball;
//   2. arrivals        -- relaunch: apply the collected destinations
//      (d-choices chooses per its placement convention first);
//      refill: draw the round's fresh batch and apply it;
//   3. stats           -- max load / empty bins maintained
//      incrementally (design choice D3).
//
// Round anatomy (sharded): phase 1 *throw* -- stripes walk their own
// bins, perform departures, draw destinations with the counter stream
// in chunked draw planes and append them to per-(stripe, target-shard)
// buffers (plus, for refill variants, each stripe draws its contiguous
// share of the fresh arrivals; for d-choices an extra *choose* phase
// reads the now-stable post-departure loads); phase 2 *commit* --
// stripes drain the buffers
// addressed to their own shards, apply the arrivals cache-hot, and
// rescan for the round statistics, reduced over stripes in fixed
// order.  No locks, no atomics, no shared cache lines inside a phase.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/config.hpp"
#include "core/kernel/exec.hpp"
#include "core/kernel/pipeline.hpp"
#include "core/kernel/variants.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/bounds.hpp"
#include "support/serial.hpp"
#include "support/types.hpp"

namespace rbb::kernel {

template <typename Variant, typename Exec>
class BallProcessCore {
 public:
  using Stream = typename Variant::Stream;
  using Stats = typename Variant::Stats;
  static constexpr BallVariantKind kKind = Variant::kKind;
  static constexpr bool kShardedExec = Exec::kSharded;

  static_assert(!kShardedExec || Stream::kScheduleFree,
                "sharded execution requires a schedule-free (counter) RNG "
                "stream: a sequential generator would serialize the round "
                "or make results depend on the schedule");
  static_assert(std::is_same_v<LoadConfig::value_type, load_t>,
                "LoadConfig must store load_t (see support/types.hpp)");

  static constexpr std::uint64_t kNeverEmptied =
      std::numeric_limits<std::uint64_t>::max();

  BallProcessCore(LoadConfig initial, Variant variant,
                  ExecOptions options = {})
      : loads_(std::move(initial)),
        variant_(std::move(variant)),
        exec_(loads_.empty() ? 1 : static_cast<std::uint32_t>(loads_.size()),
              options),
        balls_(rbb::total_balls(loads_)) {
    if (loads_.empty()) {
      throw std::invalid_argument("BallProcessCore: empty configuration");
    }
    variant_.validate(bin_count());
    variant_.init(loads_);
    recompute_stats();
    if constexpr (kShardedExec) {
      const ShardPlan& plan = exec_.plan();
      buffers_.resize(static_cast<std::size_t>(plan.stripe_count()) *
                      plan.shard_count());
      acc_.resize(plan.stripe_count());
      if constexpr (kKind == BallVariantKind::kDChoices ||
                    kKind == BallVariantKind::kThreshold) {
        releasers_.resize(plan.stripe_count());
      }
    }
  }

  /// Executes one synchronous round; returns end-of-round statistics.
  Stats step() {
    if constexpr (kShardedExec) {
      step_sharded();
    } else {
      step_sequential();
    }
    ++round_;
    return Variant::make_stats(max_load_, empty_, last_departures_, balls_,
                               last_arrivals_);
  }

  /// Executes `rounds` rounds; returns the stats of the last one (the
  /// current state when rounds == 0).  Multi-round sharded runs take
  /// the pipelined path (double-buffered throw/commit overlap on a
  /// resident worker team -- pipeline.hpp) when the executor can host
  /// one and RBB_PIPELINE is not 0; trajectories are bit-identical to
  /// the barriered per-step loop either way (pinned by tests/par/).
  Stats run(std::uint64_t rounds) {
    if constexpr (kShardedExec) {
      if (rounds > 1 && pipeline_enabled() && run_sharded_pipelined(rounds)) {
        return Variant::make_stats(max_load_, empty_, last_departures_,
                                   balls_, last_arrivals_);
      }
    }
    Stats stats = Variant::make_stats(max_load_, empty_, 0, balls_, 0);
    for (std::uint64_t t = 0; t < rounds; ++t) stats = step();
    return stats;
  }

  // --- identity and load-shaped state ---------------------------------------

  [[nodiscard]] std::uint32_t bin_count() const noexcept {
    return static_cast<std::uint32_t>(loads_.size());
  }
  /// Rounds executed since construction.
  [[nodiscard]] std::uint64_t round() const noexcept { return round_; }
  [[nodiscard]] const LoadConfig& loads() const noexcept { return loads_; }
  /// Current maximum load (O(1); maintained incrementally / by the
  /// commit rescan).
  [[nodiscard]] load_t max_load() const noexcept { return max_load_; }
  /// Current number of empty bins (O(1)).
  [[nodiscard]] std::uint32_t empty_bins() const noexcept { return empty_; }
  /// True iff max_load() <= beta * log2(n).
  [[nodiscard]] bool is_legitimate(double beta = 4.0) const {
    return static_cast<double>(max_load_) <= beta * log2n(bin_count());
  }

  /// Balls currently in the system (== ball_count() for conserving
  /// variants; evolves for Tetris / leaky bins).
  [[nodiscard]] ball_count_t total_balls() const noexcept { return balls_; }
  [[nodiscard]] ball_count_t ball_count() const noexcept
    requires Variant::kConservesBalls
  {
    return balls_;
  }

  [[nodiscard]] const ShardPlan& plan() const noexcept
    requires kShardedExec
  {
    return exec_.plan();
  }

  /// Bytes of resident kernel state (load vector, variant bookkeeping,
  /// scratch and scatter buffers at their current capacity).  Feeds the
  /// memory column of sharded_scaling.
  [[nodiscard]] std::size_t resident_state_bytes() const noexcept {
    std::size_t bytes = loads_.capacity() * sizeof(load_t) +
                        scratch_.capacity() * sizeof(bin_index_t) +
                        scratch_dest_.capacity() * sizeof(bin_index_t) +
                        scratch_cand_.capacity() * sizeof(bin_index_t);
    for (const auto& buf : buffers_) {
      bytes += buf.capacity() * sizeof(bin_index_t);
    }
    for (const auto& buf : buffers_alt_) {
      bytes += buf.capacity() * sizeof(bin_index_t);
    }
    bytes += acc_.capacity() * sizeof(StripeAcc);
    for (const auto& rel : releasers_) {
      bytes += rel.capacity() * sizeof(bin_index_t);
    }
    if constexpr (kKind == BallVariantKind::kTetris) {
      bytes += variant_.first_empty_.capacity() * sizeof(std::uint64_t) +
               variant_.pending_empty_.capacity() * sizeof(bin_index_t);
    }
    return bytes;
  }

  // --- variant-specific surface ---------------------------------------------

  [[nodiscard]] std::uint32_t choices() const noexcept
    requires(kKind == BallVariantKind::kDChoices)
  {
    return variant_.d_;
  }

  [[nodiscard]] load_t threshold() const noexcept
    requires(kKind == BallVariantKind::kThreshold)
  {
    return variant_.threshold_;
  }

  [[nodiscard]] std::uint32_t probes() const noexcept
    requires(kKind == BallVariantKind::kThreshold)
  {
    return variant_.probes_;
  }

  [[nodiscard]] double lambda() const noexcept
    requires(kKind == BallVariantKind::kLeaky)
  {
    return variant_.lambda_;
  }

  [[nodiscard]] ball_count_t arrivals_per_round() const noexcept
    requires(kKind == BallVariantKind::kTetris)
  {
    return variant_.arrivals_;
  }

  /// First round at the end of which bin u was empty (0 if initially
  /// empty; kNeverEmptied if it has not emptied yet).  Lemma 4 predicts
  /// max over bins <= 5n w.h.p. from any start.
  [[nodiscard]] std::uint64_t first_empty_round(bin_index_t u) const
    requires(kKind == BallVariantKind::kTetris)
  {
    return variant_.first_empty_[u];
  }
  /// True once every bin has been empty at least once.
  [[nodiscard]] bool all_emptied_once() const noexcept
    requires(kKind == BallVariantKind::kTetris)
  {
    return variant_.not_yet_emptied_ == 0;
  }
  /// Max over bins of first_empty_round (kNeverEmptied until
  /// all_emptied_once()).
  [[nodiscard]] std::uint64_t max_first_empty_round() const
    requires(kKind == BallVariantKind::kTetris)
  {
    if (variant_.not_yet_emptied_ != 0) return kNeverEmptied;
    std::uint64_t worst = 0;
    for (const std::uint64_t r : variant_.first_empty_) {
      worst = std::max(worst, r);
    }
    return worst;
  }
  /// Runs until all bins have emptied once or `max_rounds` elapse;
  /// returns the round by which the last bin first emptied, or
  /// kNeverEmptied.
  std::uint64_t run_until_all_emptied(std::uint64_t max_rounds)
    requires(kKind == BallVariantKind::kTetris)
  {
    while (!all_emptied_once()) {
      if (round_ >= max_rounds) return kNeverEmptied;
      step();
    }
    return max_first_empty_round();
  }

  /// Adversarial reassignment (paper, Sect. 4.1): replaces the entire
  /// configuration.  The new configuration must contain the same number
  /// of balls.  Counts as a faulty round, not a process round.
  void reassign(const LoadConfig& q)
    requires Variant::kConservesBalls
  {
    validate_config(q, balls_);
    if (q.size() != loads_.size()) {
      throw std::invalid_argument("reassign: bin count mismatch");
    }
    loads_ = q;
    recompute_stats();
  }

  /// Serializes the complete trajectory state (DESIGN.md Sect. 7).
  /// Counter streams draw by (seed, round, slot), so loads + round +
  /// the variant's cumulative bookkeeping close the state: restore()
  /// into an identically-constructed process continues bit-identically.
  /// Round-boundary only -- check_invariants() proves the scatter
  /// buffers are always drained there, so they are never serialized.
  void snapshot(serial::ByteWriter& w) const
    requires Stream::kScheduleFree
  {
    w.u64(round_);
    w.u64(balls_);
    w.u32(last_departures_);
    w.u64(last_arrivals_);
    w.vec(loads_);
    if constexpr (kKind == BallVariantKind::kTetris) {
      w.vec(variant_.first_empty_);
    }
  }

  /// Inverse of snapshot().  The target must be constructed with the
  /// same configuration shape (the checkpoint layer verifies family,
  /// n, m, seed, and options digest before calling); shape or
  /// conservation mismatches throw std::invalid_argument and leave no
  /// partial state observable to step().
  void restore(serial::ByteReader& r)
    requires Stream::kScheduleFree
  {
    const std::uint64_t round = r.u64();
    const std::uint64_t balls = r.u64();
    const std::uint32_t last_departures = r.u32();
    const std::uint64_t last_arrivals = r.u64();
    LoadConfig loads;
    r.vec(loads);
    if (loads.size() != loads_.size()) {
      throw std::invalid_argument("restore: bin count mismatch");
    }
    if (rbb::total_balls(loads) != balls) {
      throw std::invalid_argument("restore: ball count inconsistent");
    }
    if constexpr (kKind == BallVariantKind::kTetris) {
      std::vector<std::uint64_t> first_empty;
      r.vec(first_empty);
      if (first_empty.size() != loads.size()) {
        throw std::invalid_argument("restore: first-empty size mismatch");
      }
      variant_.first_empty_ = std::move(first_empty);
      std::uint32_t unseen = 0;
      for (const std::uint64_t fe : variant_.first_empty_) {
        if (fe == kNeverEmptied) ++unseen;
      }
      variant_.not_yet_emptied_ = unseen;
    }
    loads_ = std::move(loads);
    balls_ = balls;
    round_ = round;
    last_departures_ = last_departures;
    last_arrivals_ = last_arrivals;
    recompute_stats();
  }

  /// Testing hook: recomputes the incremental bookkeeping from scratch
  /// and throws std::logic_error on drift.
  void check_invariants() const {
    if (rbb::total_balls(loads_) != balls_) {
      throw std::logic_error("BallProcessCore: ball count drifted");
    }
    if (rbb::max_load(loads_) != max_load_) {
      throw std::logic_error("BallProcessCore: max load out of sync");
    }
    if (rbb::empty_bins(loads_) != empty_) {
      throw std::logic_error("BallProcessCore: empty count out of sync");
    }
    if constexpr (kKind == BallVariantKind::kTetris) {
      std::uint32_t unseen = 0;
      for (const std::uint64_t r : variant_.first_empty_) {
        if (r == kNeverEmptied) ++unseen;
      }
      if (unseen != variant_.not_yet_emptied_) {
        throw std::logic_error(
            "BallProcessCore: first-empty tracking out of sync");
      }
    }
    if constexpr (kShardedExec) {
      for (const auto& buf : buffers_) {
        if (!buf.empty()) {
          throw std::logic_error(
              "BallProcessCore: scatter buffer not drained");
        }
      }
      for (const auto& buf : buffers_alt_) {
        if (!buf.empty()) {
          throw std::logic_error(
              "BallProcessCore: alternate scatter buffer not drained");
        }
      }
    }
  }

 private:
  void recompute_stats() {
    max_load_ = rbb::max_load(loads_);
    empty_ = rbb::empty_bins(loads_);
  }

  /// Incremental arrival bookkeeping shared by every sequential path.
  void apply_arrival(bin_index_t v) {
    load_t& load = loads_[v];
    if (load == 0) --empty_;
    if (++load > max_load_) max_load_ = load;
  }

  /// Applies a materialized destination block with a prefetched
  /// scatter: at large n the load vector out-sizes the cache and the
  /// random writes otherwise stall per arrival.
  void apply_scatter(const std::vector<bin_index_t>& dests) {
    constexpr std::uint32_t kPrefetchAhead = 16;
    const auto count = static_cast<std::uint32_t>(dests.size());
    for (std::uint32_t i = 0; i < count; ++i) {
      if (i + kPrefetchAhead < count) {
        __builtin_prefetch(&loads_[dests[i + kPrefetchAhead]], 1);
      }
      apply_arrival(dests[i]);
    }
  }

  /// The round's fresh-arrival count (refill variants).  Drawn before
  /// any phase runs, so it is schedule-free under the counter stream.
  [[nodiscard]] ball_count_t draw_arrival_count(std::uint64_t r) {
    if constexpr (kKind == BallVariantKind::kTetris) {
      return variant_.arrivals_;
    } else if constexpr (kKind == BallVariantKind::kLeaky) {
      if constexpr (Stream::kScheduleFree) {
        Rng rng = variant_.stream_.round_rng(r, kArrivalCountTag);
        return (*variant_.law_)(rng);
      } else {
        return (*variant_.law_)(variant_.stream_.rng());
      }
    } else {
      return 0;
    }
  }

  // --- the sequential round -------------------------------------------------

  void step_sequential() {
    const std::uint32_t n = bin_count();
    const std::uint64_t r = round_;
    constexpr bool kRefill = kKind == BallVariantKind::kTetris ||
                             kKind == BallVariantKind::kLeaky;

    std::uint32_t departures = 0;
    std::uint32_t zeros = 0;
    load_t max_after = 0;
    scratch_.clear();
    if constexpr (kKind == BallVariantKind::kTetris) {
      variant_.pending_empty_.clear();
    }

    for (bin_index_t u = 0; u < n; ++u) {
      load_t& load = loads_[u];
      if (load > 0) {
        --load;
        ++departures;
        if constexpr (kKind == BallVariantKind::kLoadOnly) {
          if constexpr (Stream::kScheduleFree) {
            // Collect the releasing bins; their destinations come from
            // one gathered draw plane after the walk (slot = u).
            scratch_.push_back(u);
          } else if (variant_.graph_ != nullptr) {
            scratch_.push_back(
                variant_.graph_->sample_neighbor(u, variant_.stream_.rng()));
          }
          // xoshiro clique path: destinations are block-drawn below so
          // the generator state stays in registers (design choice D4).
        } else if constexpr (kKind == BallVariantKind::kDChoices ||
                             kKind == BallVariantKind::kThreshold) {
          if constexpr (Stream::kScheduleFree) {
            scratch_.push_back(u);  // releasers; choices read the snapshot
          }
          // sequential stream: draws interleave with placement below.
        } else {
          --balls_;  // refill: the departing ball leaves the system
          if constexpr (kKind == BallVariantKind::kTetris) {
            if (load == 0 && variant_.first_empty_[u] == kNeverEmptied) {
              variant_.pending_empty_.push_back(u);
            }
          }
        }
      }
      if (load == 0) {
        ++zeros;
      } else if (load > max_after) {
        max_after = load;
      }
    }
    max_load_ = max_after;
    empty_ = zeros;

    if constexpr (kKind == BallVariantKind::kLoadOnly) {
      if constexpr (!Stream::kScheduleFree) {
        if (variant_.graph_ == nullptr) {
          // Complete graph: destinations sampled as one block (same
          // stream as per-ball index(n) calls) and applied with a
          // prefetched scatter -- at large n the load vector out-sizes
          // the cache and the random writes otherwise stall per arrival.
          scratch_.resize(departures);
          variant_.stream_.rng().fill_indices(scratch_.data(), departures,
                                              n);
          apply_scatter(scratch_);
        } else {
          for (const bin_index_t v : scratch_) apply_arrival(v);
        }
      } else {
        // Counter path: scratch_ holds the releasing bins; one gathered
        // draw plane materializes every destination (bit-identical to
        // the per-slot draws), then the same prefetched scatter.
        scratch_dest_.resize(scratch_.size());
        variant_.stream_.fill_gather(
            r, scratch_.data(), 0, scratch_.size(), n,
            scratch_dest_.data());
        apply_scatter(scratch_dest_);
      }
    } else if constexpr (kKind == BallVariantKind::kDChoices ||
                         kKind == BallVariantKind::kThreshold) {
      if constexpr (!Stream::kScheduleFree) {
        // Classic online placement: arrivals of the same round are
        // visible to later probes/choices.
        Rng& rng = variant_.stream_.rng();
        if constexpr (kKind == BallVariantKind::kDChoices) {
          const std::uint32_t d = variant_.d_;
          for (std::uint32_t i = 0; i < departures; ++i) {
            bin_index_t best = rng.index(n);
            for (std::uint32_t j = 1; j < d; ++j) {
              const bin_index_t c = rng.index(n);
              if (loads_[c] < loads_[best]) best = c;
            }
            apply_arrival(best);
          }
        } else {
          for (std::uint32_t i = 0; i < departures; ++i) {
            apply_arrival(variant_.choose_one(rng, n, loads_));
          }
        }
      } else {
        // Batch-snapshot placement: all choices read the post-departure
        // configuration, then all placements commit (the convention the
        // sharded backend realizes; see variants.hpp).  The candidate
        // draws come from gathered planes, candidate-major.
        const auto m = static_cast<std::uint32_t>(scratch_.size());
        scratch_dest_.resize(m);
        scratch_cand_.resize(m);
        variant_.choose_batch(r, scratch_.data(), m, n, loads_,
                              scratch_dest_.data(), scratch_cand_.data());
        apply_scatter(scratch_dest_);
      }
    } else if constexpr (kRefill) {
      const ball_count_t arrivals = draw_arrival_count(r);
      bool ball_by_ball = true;
      if constexpr (kKind == BallVariantKind::kTetris) {
        if (variant_.sampling_ == ArrivalSampling::kSplit) {
          ball_by_ball = false;
          // kSplit is sequential-stream-only (validated at construction).
          if constexpr (!Stream::kScheduleFree) {
            const std::vector<std::uint32_t> counts =
                occupancy_split(arrivals, n, variant_.stream_.rng());
            for (bin_index_t v = 0; v < n; ++v) {
              for (std::uint32_t c = 0; c < counts[v]; ++c) apply_arrival(v);
            }
          }
        }
      }
      if (ball_by_ball) {
        if constexpr (Stream::kScheduleFree) {
          // The fresh-arrival slots are contiguous: chunked range
          // planes, applied as each chunk lands.
          bin_index_t chunk[kDrawChunk];
          for (ball_count_t i = 0; i < arrivals;) {
            const auto len = static_cast<std::uint32_t>(
                std::min<ball_count_t>(kDrawChunk, arrivals - i));
            variant_.stream_.fill_range(r, fresh_arrival_slot(i), len, n,
                                        chunk);
            for (std::uint32_t k = 0; k < len; ++k) apply_arrival(chunk[k]);
            i += len;
          }
        } else {
          for (ball_count_t i = 0; i < arrivals; ++i) {
            apply_arrival(variant_.stream_.rng().index(n));
          }
        }
      }
      balls_ += arrivals;
      last_arrivals_ = arrivals;
      if constexpr (kKind == BallVariantKind::kTetris) {
        // A bin that reached zero in the departure walk was "empty at
        // this round's end" only if no arrival refilled it.
        for (const bin_index_t u : variant_.pending_empty_) {
          if (loads_[u] == 0 && variant_.first_empty_[u] == kNeverEmptied) {
            variant_.first_empty_[u] = r + 1;
            --variant_.not_yet_emptied_;
          }
        }
      }
    }
    last_departures_ = departures;
  }

  // --- the sharded round ----------------------------------------------------

  /// Per-stripe accumulator, cache-line padded so stripe tasks never
  /// share a line.  The per-round fields are reset by each round's
  /// phase bodies (so after a pipelined run they hold the LAST round's
  /// values); the cum_* fields accumulate across a pipelined run, whose
  /// single final reduction replaces the per-round one.
  struct alignas(64) StripeAcc {
    std::uint32_t departures = 0;
    load_t max = 0;
    std::uint32_t zeros = 0;
    std::uint32_t newly_emptied = 0;  // Tetris first-empty bookkeeping
    std::uint64_t cum_departures = 0;
    std::uint32_t cum_newly_emptied = 0;
  };

  /// Phase 1 (throw) for one stripe of round r: departures +
  /// destination draws into the stripe's rows of `bufs` (the
  /// parity-selected buffer base; bufs[g * shard_count + s] receives
  /// stripe g's throws into shard s).  The counter stream keys every
  /// draw by (round, slot), so the round's randomness is independent of
  /// the schedule.  Reads and writes only the stripe's own bins; refill
  /// variants also draw their contiguous share of the round's fresh
  /// arrivals here -- those draws read no loads.
  void throw_stripe(std::uint32_t g, std::uint64_t r, ball_count_t arrivals,
                    std::vector<bin_index_t>* bufs)
    requires kShardedExec
  {
    const obs::ScopedPhase phase_span(obs::Phase::kThrow);
    const std::uint32_t n = bin_count();
    const ShardPlan& plan = exec_.plan();
    const std::uint32_t shard_count = plan.shard_count();
    const std::uint32_t stripes = plan.stripe_count();
    constexpr bool kRefill = kKind == BallVariantKind::kTetris ||
                             kKind == BallVariantKind::kLeaky;
    StripeAcc& acc = acc_[g];
    acc.departures = 0;
    std::vector<bin_index_t>* row =
        bufs + static_cast<std::size_t>(g) * shard_count;
    const bin_index_t begin = plan.stripe_begin_bin(g);
    const bin_index_t end = plan.stripe_end_bin(g);
    if constexpr (kKind == BallVariantKind::kLoadOnly) {
      // The walk banks releasing bins into a stack chunk; each flush
      // materializes the chunk's destinations with one gathered draw
      // plane and scatters them.  Ascending-u push order per buffer
      // is preserved, so the commit order is unchanged.
      bin_index_t slot_buf[kDrawChunk];
      bin_index_t dest_buf[kDrawChunk];
      std::uint32_t pending = 0;
      const auto flush = [&] {
        obs::add(obs::Counter::kChunkFlushes);
        variant_.stream_.fill_gather(r, slot_buf, 0, pending, n, dest_buf);
        for (std::uint32_t i = 0; i < pending; ++i) {
          const bin_index_t dest = dest_buf[i];
          row[plan.shard_of(dest)].push_back(dest);
        }
        pending = 0;
      };
      for (bin_index_t u = begin; u < end; ++u) {
        load_t& load = loads_[u];
        if (load > 0) {
          --load;
          ++acc.departures;
          slot_buf[pending++] = u;
          if (pending == kDrawChunk) flush();
        }
      }
      if (pending > 0) flush();
    } else {
      constexpr bool kChoose = kKind == BallVariantKind::kDChoices ||
                               kKind == BallVariantKind::kThreshold;
      if constexpr (kChoose) {
        releasers_[g].clear();
      }
      for (bin_index_t u = begin; u < end; ++u) {
        load_t& load = loads_[u];
        if (load > 0) {
          --load;
          ++acc.departures;
          if constexpr (kChoose) {
            releasers_[g].push_back(u);
          }
          // refill: the ball leaves; nothing to scatter for it.
        }
      }
    }
    if constexpr (kRefill) {
      const ball_count_t lo = arrivals * g / stripes;
      const ball_count_t hi = arrivals * (g + 1) / stripes;
      bin_index_t chunk[kDrawChunk];
      for (ball_count_t i = lo; i < hi;) {
        const auto len = static_cast<std::uint32_t>(
            std::min<ball_count_t>(kDrawChunk, hi - i));
        obs::add(obs::Counter::kChunkFlushes);
        variant_.stream_.fill_range(r, fresh_arrival_slot(i), len, n, chunk);
        for (std::uint32_t k = 0; k < len; ++k) {
          row[plan.shard_of(chunk[k])].push_back(chunk[k]);
        }
        i += len;
      }
    }
    acc.cum_departures += acc.departures;
  }

  /// Phase 1.5 (choose) for one stripe, d-choices and threshold only:
  /// the stripe resolves its releasers' candidates against the
  /// now-stable post-departure configuration.  Cross-shard loads are
  /// read, never written, so the phase is race-free; the choices are
  /// the batch-snapshot convention the sequential counter-stream
  /// sibling realizes (variants.hpp).
  void choose_stripe(std::uint32_t g, std::uint64_t r,
                     std::vector<bin_index_t>* bufs)
    requires kShardedExec
  {
    const obs::ScopedPhase phase_span(obs::Phase::kChoose);
    const std::uint32_t n = bin_count();
    const ShardPlan& plan = exec_.plan();
    std::vector<bin_index_t>* row =
        bufs + static_cast<std::size_t>(g) * plan.shard_count();
    const std::vector<bin_index_t>& rel = releasers_[g];
    bin_index_t best[kDrawChunk];
    bin_index_t cand[kDrawChunk];
    for (std::size_t i = 0; i < rel.size();) {
      const auto len = static_cast<std::uint32_t>(
          std::min<std::size_t>(kDrawChunk, rel.size() - i));
      variant_.choose_batch(r, rel.data() + i, len, n, loads_, best, cand);
      for (std::uint32_t k = 0; k < len; ++k) {
        row[plan.shard_of(best[k])].push_back(best[k]);
      }
      i += len;
    }
  }

  /// Phase 2 (commit) for one stripe: drains every stripe's `bufs`
  /// buffers addressed to its own shards (ascending source stripe --
  /// the canonical arrival order) and rescans them for the round
  /// statistics.  The shard's loads are cache-hot, so the random
  /// within-shard scatter is cheap.
  void commit_stripe(std::uint32_t g, std::uint64_t r,
                     std::vector<bin_index_t>* bufs)
    requires kShardedExec
  {
    const obs::ScopedPhase phase_span(obs::Phase::kCommit);
    const ShardPlan& plan = exec_.plan();
    const std::uint32_t shard_count = plan.shard_count();
    const std::uint32_t stripes = plan.stripe_count();
    StripeAcc& acc = acc_[g];
    acc.max = 0;
    acc.zeros = 0;
    acc.newly_emptied = 0;
    for (std::uint32_t s = plan.stripe_begin_shard(g);
         s < plan.stripe_end_shard(g); ++s) {
      for (std::uint32_t src = 0; src < stripes; ++src) {
        std::vector<bin_index_t>& buf =
            bufs[static_cast<std::size_t>(src) * shard_count + s];
        for (const bin_index_t dest : buf) ++loads_[dest];
        buf.clear();
      }
      const std::uint64_t rs0 = obs::enabled() ? obs::now_ns() : 0;
      for (bin_index_t u = plan.shard_begin(s); u < plan.shard_end(s); ++u) {
        const load_t load = loads_[u];
        if (load == 0) {
          ++acc.zeros;
          if constexpr (kKind == BallVariantKind::kTetris) {
            // End-load zero means the bin emptied this round (or was
            // marked before): equivalent to the sequential pending
            // logic, since arrivals only add and departures remove
            // at most one ball.
            if (variant_.first_empty_[u] == kNeverEmptied) {
              variant_.first_empty_[u] = r + 1;
              ++acc.newly_emptied;
            }
          }
        } else if (load > acc.max) {
          acc.max = load;
        }
      }
      if (rs0 != 0) {
        const std::uint64_t rs1 = obs::now_ns();
        obs::add_phase_ns(obs::Phase::kRescan, rs1 - rs0);
        obs::record_span("rescan", rs0, rs1);
      }
    }
    acc.cum_newly_emptied += acc.newly_emptied;
  }

  void step_sharded()
    requires kShardedExec
  {
    const std::uint64_t r = round_;
    const ShardPlan& plan = exec_.plan();
    const std::uint32_t stripes = plan.stripe_count();
    constexpr bool kRefill = kKind == BallVariantKind::kTetris ||
                             kKind == BallVariantKind::kLeaky;

    const ball_count_t arrivals = draw_arrival_count(r);

    exec_.stripes().for_stripes(stripes, [&](std::uint32_t g) {
      throw_stripe(g, r, arrivals, buffers_.data());
    });
    if constexpr (kKind == BallVariantKind::kDChoices ||
                  kKind == BallVariantKind::kThreshold) {
      exec_.stripes().for_stripes(stripes, [&](std::uint32_t g) {
        choose_stripe(g, r, buffers_.data());
      });
    }
    exec_.stripes().for_stripes(stripes, [&](std::uint32_t g) {
      commit_stripe(g, r, buffers_.data());
    });

    // Fixed-order reduction over stripes.
    std::uint32_t departures = 0;
    max_load_ = 0;
    empty_ = 0;
    for (const StripeAcc& acc : acc_) {
      departures += acc.departures;
      max_load_ = std::max(max_load_, acc.max);
      empty_ += acc.zeros;
      if constexpr (kKind == BallVariantKind::kTetris) {
        variant_.not_yet_emptied_ -= acc.newly_emptied;
      }
    }
    if constexpr (kRefill) {
      balls_ -= departures;
      balls_ += arrivals;
      last_arrivals_ = arrivals;
    }
    last_departures_ = departures;
  }

  /// The pipelined multi-round path (pipeline.hpp): one resident worker
  /// team runs all `rounds` rounds, alternating between buffers_ and
  /// buffers_alt_ by round parity so a worker's throw of round i+1 may
  /// overlap peers' commits of round i.  Returns false -- having
  /// executed nothing -- when the executor cannot host a team of at
  /// least 2; trajectories are bit-identical to `rounds` barriered
  /// step() calls (same draws, same canonical commit order).
  bool run_sharded_pipelined(std::uint64_t rounds)
    requires kShardedExec
  {
    const ShardPlan& plan = exec_.plan();
    const std::uint32_t stripes = plan.stripe_count();
    const std::uint32_t width = std::min(stripes, exec_.stripes().team_width());
    if (width < 2) return false;
    constexpr bool kRefill = kKind == BallVariantKind::kTetris ||
                             kKind == BallVariantKind::kLeaky;
    constexpr bool kChoose = kKind == BallVariantKind::kDChoices ||
                             kKind == BallVariantKind::kThreshold;
    if (buffers_alt_.empty()) buffers_alt_.resize(buffers_.size());

    // Fresh-arrival counts are drawn sequentially up front: the leaky
    // law is a shared distribution object (not thread-safe), and the
    // draws are schedule-free by (round) key, so hoisting them changes
    // nothing.
    std::vector<ball_count_t> arrivals_by_round;
    if constexpr (kRefill) {
      arrivals_by_round.reserve(rounds);
      for (std::uint64_t i = 0; i < rounds; ++i) {
        arrivals_by_round.push_back(draw_arrival_count(round_ + i));
      }
    }
    for (StripeAcc& acc : acc_) {
      acc.cum_departures = 0;
      acc.cum_newly_emptied = 0;
    }
    const std::uint64_t r0 = round_;
    const auto bufs = [this](std::uint64_t i) {
      return (i & 1) == 0 ? buffers_.data() : buffers_alt_.data();
    };
    const bool ran = run_pipeline(
        exec_.stripes(), stripes, width, rounds, kChoose,
        [&](std::uint32_t g, std::uint64_t i) {
          throw_stripe(g, r0 + i,
                       kRefill ? arrivals_by_round[i] : ball_count_t{0},
                       bufs(i));
        },
        [&](std::uint32_t g, std::uint64_t i) {
          if constexpr (kChoose) choose_stripe(g, r0 + i, bufs(i));
        },
        [&](std::uint32_t g, std::uint64_t i) {
          commit_stripe(g, r0 + i, bufs(i));
        });
    if (!ran) return false;

    // One reduction for the whole run: the per-round acc fields hold
    // the last round's values, the cum_* fields the run totals.
    std::uint64_t total_departures = 0;
    std::uint32_t departures = 0;
    max_load_ = 0;
    empty_ = 0;
    for (const StripeAcc& acc : acc_) {
      total_departures += acc.cum_departures;
      departures += acc.departures;
      max_load_ = std::max(max_load_, acc.max);
      empty_ += acc.zeros;
      if constexpr (kKind == BallVariantKind::kTetris) {
        variant_.not_yet_emptied_ -= acc.cum_newly_emptied;
      }
    }
    if constexpr (kRefill) {
      balls_ -= total_departures;
      for (const ball_count_t a : arrivals_by_round) balls_ += a;
      last_arrivals_ = arrivals_by_round.back();
    }
    last_departures_ = departures;
    round_ += rounds;
    return true;
  }

  LoadConfig loads_;
  Variant variant_;
  Exec exec_;
  ball_count_t balls_;
  std::uint64_t round_ = 0;
  load_t max_load_ = 0;
  std::uint32_t empty_ = 0;
  std::uint32_t last_departures_ = 0;
  ball_count_t last_arrivals_ = 0;

  // Sequential-path scratch: releasing bins / block-drawn clique
  // destinations (scratch_), the plane-materialized destinations
  // (scratch_dest_), and the d-choices candidate plane (scratch_cand_).
  std::vector<bin_index_t> scratch_;
  std::vector<bin_index_t> scratch_dest_;
  std::vector<bin_index_t> scratch_cand_;

  /// buffers_[stripe * shard_count + target_shard]: destinations thrown
  /// by `stripe` into `target_shard` this round.  Cleared (capacity
  /// kept) by the phase-2 task that drains them.  Sharded only.
  /// buffers_alt_ is the odd-parity twin used by the pipelined path
  /// (run_sharded_pipelined): round i throws into the parity-(i&1) set
  /// so throw(i+1) never touches buffers a peer is still committing.
  /// Sized lazily on the first pipelined run.
  std::vector<std::vector<bin_index_t>> buffers_;
  std::vector<std::vector<bin_index_t>> buffers_alt_;
  std::vector<StripeAcc> acc_;
  std::vector<std::vector<bin_index_t>> releasers_;  // d-choices, per stripe
};

}  // namespace rbb::kernel
