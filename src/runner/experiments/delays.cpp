// E19 -- Sect. 1.1: "if the process is stable, every ball can be delayed
// for at most O(log n) rounds before leaving a node."
#include "analysis/experiments.hpp"
#include "runner/registry.hpp"
#include "support/bounds.hpp"

namespace rbb::runner {

void register_delays(Registry& registry) {
  Experiment e;
  e.name = "delays";
  e.claim = "E19";
  e.title = "per-release waiting times: O(log n) max under FIFO";
  e.description =
      "Per n and queue policy, the pooled waiting-time distribution of "
      "every token release (p50 / p99 / p99.9 / per-trial max), against "
      "the O(log n) scale.  Under FIFO the maximum delay is bounded by "
      "the window maximum load; LIFO has no such per-token guarantee (a "
      "buried token can starve while the bin stays busy) and its tail "
      "visibly fattens.";
  e.run = [](const RunContext& ctx) {
    const std::uint32_t trials = ctx.trials_or(2, 4, 8);
    const std::uint64_t wf = by_scale<std::uint64_t>(ctx.scale, 8, 16, 48);

    ResultSet rs;
    Table& table = rs.add_table(
        "E19_delays", "per-release waiting times: O(log n) max under FIFO",
        {"n", "policy", "releases", "mean delay", "p50", "p99", "p99.9",
         "max (mean over trials)", "max / log2 n"});
    for (const std::uint32_t n : default_n_sweep(ctx.scale)) {
      for (const QueuePolicy policy :
           {QueuePolicy::kFifo, QueuePolicy::kRandom, QueuePolicy::kLifo}) {
        DelayParams p;
        p.n = n;
        p.rounds = wf * n;
        p.trials = trials;
        p.seed = ctx.seed();
        p.policy = policy;
        const DelayResult r = run_delays(p);
        table.row()
            .cell(std::uint64_t{n})
            .cell(std::string(to_string(policy)))
            .cell(r.delays.total())
            .cell(r.mean_delay, 3)
            .cell(r.p50)
            .cell(r.p99)
            .cell(r.p999)
            .cell(r.max_delay.mean(), 1)
            .cell(r.max_delay.mean() / log2n(n), 3);
      }
    }
    return rs;
  };
  registry.add(std::move(e));
}

}  // namespace rbb::runner
