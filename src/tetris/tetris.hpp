// The Tetris process (paper, Sect. 3.1) and its instrumentation.
//
// Tetris is the analysis-friendly auxiliary process: starting from a
// configuration with at least n/4 empty bins, in every round
//   (1) every non-empty bin discards one ball, and
//   (2) exactly floor(3n/4) fresh balls are thrown i.i.d. u.a.r.
// Arrivals are independent across rounds -- the property the original
// process lacks (Appendix B) -- which makes Chernoff bounds applicable.
// Lemma 3 couples Tetris to the original process so that Tetris's maximum
// load dominates w.h.p.; Lemma 4 shows every bin empties within 5n rounds
// from any start; Lemma 6 gives the O(log n) stability window.
//
// The arrivals-per-round count and the arrival sampling strategy
// (ball-by-ball vs. multinomial splitting, ablation D1) are exposed as
// parameters; the critical-drift sweep (arrivals = mu * n for mu -> 1)
// is an ablation bench showing why 3/4 works.
//
// Since the policy refactor (DESIGN.md Sect. 5), TetrisProcess is a thin
// constructor adapter over the process core (Tetris variant, sequential
// xoshiro stream, in-place execution); the counter-stream and sharded
// instantiations live in src/par/.
#pragma once

#include <cstdint>

#include "core/config.hpp"
#include "core/kernel/ball_kernel.hpp"
#include "support/rng.hpp"

namespace rbb {

/// The Tetris repeated balls-into-bins process (sequential xoshiro
/// instantiation of the process core).
class TetrisProcess
    : public kernel::BallProcessCore<kernel::Tetris<kernel::SequentialStream>,
                                     kernel::SequentialExecution> {
 public:
  /// `arrivals_per_round` == 0 selects the paper's floor(3n/4).
  TetrisProcess(LoadConfig initial, Rng rng,
                std::uint64_t arrivals_per_round = 0,
                ArrivalSampling sampling = ArrivalSampling::kBallByBall)
      : BallProcessCore(std::move(initial),
                        kernel::Tetris<kernel::SequentialStream>(
                            kernel::SequentialStream(rng), arrivals_per_round,
                            sampling)) {}
};

}  // namespace rbb
