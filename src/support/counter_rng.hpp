// Counter-based pseudo-random number generation (Philox4x32-10).
//
// The xoshiro Rng in rng.hpp is *sequential*: the t-th draw depends on
// having produced the t-1 draws before it, which pins every consumer to
// one serial stream.  The sharded round kernel in src/par/ needs the
// opposite contract: the destination of the ball leaving bin u in round
// r must be computable by ANY worker, in ANY order, without
// synchronization -- and must come out bit-identical no matter how the
// bins are partitioned across threads.
//
// A counter-based generator (Salmon, Moraes, Dror, Shaw -- "Parallel
// Random Numbers: As Easy as 1, 2, 3", SC'11) delivers exactly that:
// output = bijection(key, counter), no state.  We use Philox4x32 with
// the authors' recommended 10 rounds, whose outputs pass BigCrush.
//
// Stream-splitting contract (relied on by src/par/ and its tests):
//
//   key     = two 32-bit words derived from the 64-bit root seed
//             (SplitMix64-mixed, so nearby seeds give unrelated keys),
//   counter = (round, slot): the 128-bit counter is the concatenation
//             of the 64-bit round index and a 64-bit "ball slot".
//
// The slot identifies the logical draw within the round; the sharded
// kernels use the index of the *releasing bin* (each bin releases at
// most one ball per round, so the slot is unique).  Distinct
// (seed, round, slot) triples therefore yield independent draws, and a
// round's randomness is fully determined before any worker starts --
// which is what makes the two-phase scatter deterministic for every
// thread count and shard size.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

#include "support/rng.hpp"  // SplitMix64, mix64

namespace rbb {

/// One Philox4x32 block: encrypts a 128-bit counter under a 64-bit key
/// with `kPhiloxRounds` rounds.  Constants are the ones from the SC'11
/// paper; the known-answer tests in tests/support/ pin the output
/// against the Random123 reference vectors.
inline constexpr int kPhiloxRounds = 10;
inline constexpr std::uint32_t kPhiloxMul0 = 0xD2511F53u;
inline constexpr std::uint32_t kPhiloxMul1 = 0xCD9E8D57u;
inline constexpr std::uint32_t kPhiloxWeyl0 = 0x9E3779B9u;  // golden ratio
inline constexpr std::uint32_t kPhiloxWeyl1 = 0xBB67AE85u;  // sqrt(3) - 1

/// The per-round key pairs of one Philox key: round r bumps each word
/// by its Weyl constant.  The scalar block function materializes them
/// on the fly (two adds per round); the batched draw planes
/// (support/draw_plane.hpp) hoist this schedule once per plane so the
/// per-block inner loop carries no key arithmetic at all.
using PhiloxKeySchedule =
    std::array<std::array<std::uint32_t, 2>, kPhiloxRounds>;

[[nodiscard]] constexpr PhiloxKeySchedule philox_key_schedule(
    std::array<std::uint32_t, 2> key) noexcept {
  PhiloxKeySchedule schedule{};
  for (int r = 0; r < kPhiloxRounds; ++r) {
    schedule[static_cast<std::size_t>(r)] = key;
    key[0] += kPhiloxWeyl0;
    key[1] += kPhiloxWeyl1;
  }
  return schedule;
}

[[nodiscard]] constexpr std::array<std::uint32_t, 4> philox4x32(
    std::array<std::uint32_t, 4> counter,
    std::array<std::uint32_t, 2> key) noexcept {
  for (int r = 0; r < kPhiloxRounds; ++r) {
    const std::uint64_t p0 =
        static_cast<std::uint64_t>(kPhiloxMul0) * counter[0];
    const std::uint64_t p1 =
        static_cast<std::uint64_t>(kPhiloxMul1) * counter[2];
    counter = {
        static_cast<std::uint32_t>(p1 >> 32) ^ counter[1] ^ key[0],
        static_cast<std::uint32_t>(p1),
        static_cast<std::uint32_t>(p0 >> 32) ^ counter[3] ^ key[1],
        static_cast<std::uint32_t>(p0),
    };
    key[0] += kPhiloxWeyl0;
    key[1] += kPhiloxWeyl1;
  }
  return counter;
}

/// Lemire bounded reduction on a draw's two 64-bit words: multiply-shift
/// on w0 with one rejection retry on w1, after which w1 is accepted
/// unconditionally (residual bias < 2^-64 per draw; see
/// CounterRng::index).  Shared by the scalar per-call path and the
/// batched draw planes so the two are identical by construction: the
/// plane hoists `threshold` and skips the `lo < n` pre-test, which is
/// equivalent because threshold = (2^64 - n) mod n < n always.
[[nodiscard]] constexpr std::uint32_t lemire_bounded(
    std::uint64_t w0, std::uint64_t w1, std::uint32_t n) noexcept {
  __uint128_t m = static_cast<__uint128_t>(w0) * n;
  if (static_cast<std::uint64_t>(m) < n) {
    const std::uint64_t threshold = (0 - std::uint64_t{n}) % n;
    if (static_cast<std::uint64_t>(m) < threshold) {
      m = static_cast<__uint128_t>(w1) * n;
    }
  }
  return static_cast<std::uint32_t>(m >> 64);
}

/// The stateless RNG facade over philox4x32: a key (from the root seed)
/// plus per-call (round, slot) counters.  Copying is free; there is no
/// sequence position to share or corrupt, so one instance can be read
/// from any number of threads concurrently.
class CounterRng {
 public:
  /// Derives the Philox key from a 64-bit root seed.  Two SplitMix64
  /// outputs feed the two key words so that seeds differing in one bit
  /// produce unrelated keys (same construction rng.hpp uses for state).
  constexpr explicit CounterRng(std::uint64_t seed) noexcept : key_{0, 0} {
    SplitMix64 sm(seed);
    const std::uint64_t k = sm();
    key_ = {static_cast<std::uint32_t>(k),
            static_cast<std::uint32_t>(k >> 32)};
  }

  /// Derives the key for logical stream `stream` of root seed `seed`
  /// (e.g. one stream per Monte-Carlo trial), mirroring Rng(seed,
  /// stream).
  constexpr CounterRng(std::uint64_t seed, std::uint64_t stream) noexcept
      : CounterRng(mix64(seed, stream)) {}

  /// The 128-bit block for (round, slot).
  [[nodiscard]] constexpr std::array<std::uint32_t, 4> block(
      std::uint64_t round, std::uint64_t slot) const noexcept {
    return philox4x32({static_cast<std::uint32_t>(slot),
                       static_cast<std::uint32_t>(slot >> 32),
                       static_cast<std::uint32_t>(round),
                       static_cast<std::uint32_t>(round >> 32)},
                      key_);
  }

  /// The block as two 64-bit words.
  [[nodiscard]] constexpr std::array<std::uint64_t, 2> words(
      std::uint64_t round, std::uint64_t slot) const noexcept {
    const std::array<std::uint32_t, 4> b = block(round, slot);
    return {b[0] | (static_cast<std::uint64_t>(b[1]) << 32),
            b[2] | (static_cast<std::uint64_t>(b[3]) << 32)};
  }

  /// Uniform index in [0, n) for draw (round, slot); n in [1, 2^32).
  ///
  /// Lemire multiply-shift on the block's first 64-bit word, with one
  /// rejection retry on the second word.  A counter-based draw cannot
  /// loop indefinitely the way Rng::below can, so after the retry the
  /// second word is accepted unconditionally: the residual bias is
  /// below 2^-64 per draw (both words landing in the rejection zone of
  /// width < n <= 2^32 out of 2^64), far under any observable effect.
  [[nodiscard]] constexpr std::uint32_t index(std::uint64_t round,
                                              std::uint64_t slot,
                                              std::uint32_t n) const noexcept {
    const std::array<std::uint64_t, 2> w = words(round, slot);
    return lemire_bounded(w[0], w[1], n);
  }

  /// Uniform double in [0, 1) with 53 random bits for draw (round, slot).
  [[nodiscard]] constexpr double uniform(std::uint64_t round,
                                         std::uint64_t slot) const noexcept {
    return static_cast<double>(words(round, slot)[0] >> 11) * 0x1.0p-53;
  }

  /// The derived key (testing only).
  [[nodiscard]] constexpr const std::array<std::uint32_t, 2>& key()
      const noexcept {
    return key_;
  }

 private:
  std::array<std::uint32_t, 2> key_;
};

}  // namespace rbb
