// Parallel Monte-Carlo trial runner (DESIGN.md Sect. 2).
//
// Every experiment driver is "run T independent trials, reduce": this
// header owns that pattern.  Trial `i` gets the substream Rng(seed, i),
// so results are reproducible from one 64-bit seed and bit-identical for
// any worker-thread count (each trial writes only its own result slot;
// the reduction happens sequentially afterwards -- design choice D5,
// pinned by the determinism test in tests/engine/).
//
// `fn` is a template parameter all the way down to the thread pool's
// batch dispatch, so the per-trial hot loop is inlinable -- no
// std::function indirection (this absorbed and replaced the old
// analysis/experiments for_each_trial).
#pragma once

#include <cstdint>
#include <utility>

#include "obs/trace.hpp"
#include "support/rng.hpp"
#include "support/thread_pool.hpp"

namespace rbb {

/// Runs fn(trial, rng) for trial = 0..trials-1, with rng = Rng(seed,
/// trial), on `pool` (nullptr = the process-wide pool).  Blocks until all
/// trials finish; rethrows the first trial exception.
template <typename Fn>
void for_each_trial(std::uint32_t trials, std::uint64_t seed, Fn&& fn,
                    ThreadPool* pool = nullptr) {
  ThreadPool& chosen = pool != nullptr ? *pool : ThreadPool::global();
  chosen.for_each(trials, [seed, &fn](std::uint64_t trial) {
    const obs::ScopedPhase trial_span(obs::Phase::kTrial);
    Rng rng(seed, trial);
    fn(static_cast<std::uint32_t>(trial), rng);
  });
}

/// How a sweep splits its thread budget between trial fan-out and
/// intra-instance sharded rounds (the --trial-parallelism knob;
/// RunContext::trial_plan derives one from the CLI).
///
/// trial_workers = 0 keeps the legacy behavior: trials fan out on the
/// shared global pool and anything sharded inside a trial degrades to
/// sequential under the nesting rule.  trial_workers >= 1 runs exactly
/// that many concurrent trials, each holding a NestedParallelismGrant
/// so the round kernel inside may still shard across `process_threads`
/// threads of its own private pool -- trial x round nested parallelism
/// without oversubscribing (trial_workers * process_threads is kept at
/// or below the budget by the planner).
struct TrialPlan {
  std::uint32_t trial_workers = 0;  // 0 = legacy global-pool fan-out
  unsigned process_threads = 1;     // ExecOptions::threads per instance
};

/// Plan-aware overload: like above, but the trial fan-out width follows
/// `plan` (see TrialPlan).  Trial i still gets Rng(seed, i), and each
/// trial writes only its own slot, so results stay bit-identical to the
/// legacy overload for every plan.
template <typename Fn>
void for_each_trial(std::uint32_t trials, std::uint64_t seed, TrialPlan plan,
                    Fn&& fn, ThreadPool* pool = nullptr) {
  if (plan.trial_workers == 0) {
    for_each_trial(trials, seed, std::forward<Fn>(fn), pool);
    return;
  }
  if (plan.trial_workers == 1 || trials <= 1) {
    // Sequential fan-out: the whole budget belongs to the instance, so
    // no pool (and no grant) is needed at the trial level.
    for (std::uint32_t trial = 0; trial < trials; ++trial) {
      const obs::ScopedPhase trial_span(obs::Phase::kTrial);
      Rng rng(seed, trial);
      fn(trial, rng);
    }
    return;
  }
  // A private pool of trial_workers - 1 workers: the submitting thread
  // drains batches too, so exactly trial_workers trials run at once.
  ThreadPool trial_pool(plan.trial_workers - 1);
  trial_pool.for_each(trials, [seed, &fn](std::uint64_t trial) {
    const obs::ScopedPhase trial_span(obs::Phase::kTrial);
    // The deliberate split: this trial owns process_threads of the
    // budget, so the sharded round inside may host a team on its own
    // pool instead of degrading to sequential (thread_pool.hpp).
    const NestedParallelismGrant grant;
    Rng rng(seed, trial);
    fn(static_cast<std::uint32_t>(trial), rng);
  });
}

}  // namespace rbb
