#include "selfstab/certifier.hpp"

#include <cmath>
#include <stdexcept>

namespace rbb {

double wilson_lower_bound(std::uint64_t successes, std::uint64_t trials,
                          double z) {
  if (trials == 0) return 0.0;
  if (successes > trials) {
    throw std::invalid_argument("wilson: successes > trials");
  }
  const double n = static_cast<double>(trials);
  const double phat = static_cast<double>(successes) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = phat + z2 / (2.0 * n);
  const double spread =
      z * std::sqrt(phat * (1.0 - phat) / n + z2 / (4.0 * n * n));
  const double low = (center - spread) / denom;
  return low < 0.0 ? 0.0 : low;
}

CertifyResult certify_self_stabilization(const StabTrialFactory& factory,
                                         const CertifySpec& spec) {
  CertifyResult out;
  out.trials = spec.trials;
  for (std::uint64_t trial = 0; trial < spec.trials; ++trial) {
    StabTrialHooks hooks = factory(trial);
    if (!hooks.step || !hooks.legitimate) {
      throw std::invalid_argument("certify: factory returned empty hooks");
    }
    // Convergence phase.
    std::uint64_t rounds = 0;
    bool converged = hooks.legitimate();
    while (!converged && rounds < spec.horizon) {
      hooks.step();
      ++rounds;
      converged = hooks.legitimate();
    }
    if (!converged) continue;
    ++out.converged;
    out.convergence_rounds.add(static_cast<double>(rounds));
    // Closure phase.
    for (std::uint64_t t = 0; t < spec.closure_window; ++t) {
      hooks.step();
      if (!hooks.legitimate()) ++out.closure_violations;
    }
    out.closure_rounds += spec.closure_window;
  }
  out.p_converged_lower95 = wilson_lower_bound(out.converged, out.trials);
  return out;
}

}  // namespace rbb
