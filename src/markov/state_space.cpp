#include "markov/state_space.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

namespace rbb {

namespace {

/// Appends, in lexicographic order, every way to place `balls` balls into
/// positions [pos, n) of `current`.
void enumerate_rec(std::uint32_t bins, std::uint32_t balls, std::uint32_t pos,
                   LoadConfig& current, std::vector<LoadConfig>& out) {
  if (pos + 1 == bins) {
    current[pos] = balls;
    out.push_back(current);
    return;
  }
  for (std::uint32_t k = 0; k <= balls; ++k) {
    current[pos] = k;
    enumerate_rec(bins, balls - k, pos + 1, current, out);
  }
  current[pos] = 0;
}

}  // namespace

std::uint64_t StateSpace::expected_size(std::uint32_t bins,
                                        std::uint32_t balls) {
  if (bins == 0) throw std::invalid_argument("state space: bins must be >= 1");
  // C(balls + bins - 1, bins - 1) with overflow detection.
  const std::uint64_t n = static_cast<std::uint64_t>(balls) + bins - 1;
  const std::uint64_t k =
      std::min<std::uint64_t>(bins - 1, static_cast<std::uint64_t>(balls));
  std::uint64_t result = 1;
  for (std::uint64_t i = 1; i <= k; ++i) {
    // result *= (n - k + i) / i, exact at every step because the running
    // product of i consecutive ratios is itself a binomial coefficient.
    const std::uint64_t num = n - k + i;
    if (result > UINT64_MAX / num) {
      throw std::overflow_error("state space size overflows 64 bits");
    }
    result = result * num / i;
  }
  return result;
}

StateSpace::StateSpace(std::uint32_t bins, std::uint32_t balls,
                       std::size_t max_states)
    : bins_(bins), balls_(balls) {
  const std::uint64_t expected = expected_size(bins, balls);
  if (expected > max_states) {
    throw std::invalid_argument(
        "state space too large for exact enumeration");
  }
  states_.reserve(expected);
  LoadConfig current(bins, 0);
  enumerate_rec(bins, balls, 0, current, states_);
}

std::size_t StateSpace::index_of(const LoadConfig& q) const {
  if (q.size() != bins_ || total_balls(q) != balls_) {
    throw std::invalid_argument("index_of: not a member configuration");
  }
  const auto it = std::lower_bound(states_.begin(), states_.end(), q);
  // Every valid (length, total) configuration is enumerated, so q is
  // guaranteed present.
  return static_cast<std::size_t>(it - states_.begin());
}

LoadConfig StateSpace::orbit_representative(std::size_t id) const {
  LoadConfig rep = states_[id];
  std::sort(rep.begin(), rep.end(), std::greater<>());
  return rep;
}

std::vector<std::vector<std::size_t>> StateSpace::orbits() const {
  std::map<LoadConfig, std::vector<std::size_t>> groups;
  for (std::size_t id = 0; id < states_.size(); ++id) {
    groups[orbit_representative(id)].push_back(id);
  }
  std::vector<std::vector<std::size_t>> out;
  out.reserve(groups.size());
  for (auto& [rep, ids] : groups) out.push_back(std::move(ids));
  return out;
}

}  // namespace rbb
