// Tests for the dense linear-algebra substrate of the exact-chain module.
#include "markov/dense_matrix.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "support/rng.hpp"

namespace rbb {
namespace {

TEST(DenseMatrix, IdentityHasUnitDiagonal) {
  const DenseMatrix id = DenseMatrix::identity(4);
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < 4; ++c) {
      EXPECT_DOUBLE_EQ(id.at(r, c), r == c ? 1.0 : 0.0);
    }
  }
  EXPECT_TRUE(id.is_row_stochastic());
}

TEST(DenseMatrix, RowStochasticDetectsBadRows) {
  DenseMatrix m(2, 2);
  m.at(0, 0) = 0.5;
  m.at(0, 1) = 0.5;
  m.at(1, 0) = 0.7;
  m.at(1, 1) = 0.2;  // row sums to 0.9
  EXPECT_FALSE(m.is_row_stochastic());
  m.at(1, 1) = 0.3;
  EXPECT_TRUE(m.is_row_stochastic());
  m.at(1, 0) = -0.1;
  m.at(1, 1) = 1.1;  // sums to 1 but has a negative entry
  EXPECT_FALSE(m.is_row_stochastic());
}

TEST(DenseMatrix, LeftMultiplyMatchesHandComputation) {
  DenseMatrix m(2, 3);
  m.at(0, 0) = 1.0;
  m.at(0, 1) = 2.0;
  m.at(0, 2) = 3.0;
  m.at(1, 0) = 4.0;
  m.at(1, 1) = 5.0;
  m.at(1, 2) = 6.0;
  const std::vector<double> x = {2.0, -1.0};
  const std::vector<double> y = m.left_multiply(x);
  ASSERT_EQ(y.size(), 3u);
  EXPECT_DOUBLE_EQ(y[0], -2.0);
  EXPECT_DOUBLE_EQ(y[1], -1.0);
  EXPECT_DOUBLE_EQ(y[2], 0.0);
}

TEST(DenseMatrix, LeftMultiplySizeMismatchThrows) {
  const DenseMatrix m(2, 2);
  EXPECT_THROW((void)m.left_multiply({1.0, 2.0, 3.0}), std::invalid_argument);
}

TEST(DenseMatrix, MultiplyAgreesWithAssociativity) {
  // (x M) N == x (M N) on random data.
  Rng rng(7);
  DenseMatrix m(3, 4);
  DenseMatrix n(4, 2);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 4; ++c) m.at(r, c) = rng.uniform() - 0.5;
  }
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < 2; ++c) n.at(r, c) = rng.uniform() - 0.5;
  }
  const std::vector<double> x = {0.3, -1.2, 2.5};
  const std::vector<double> lhs = n.left_multiply(m.left_multiply(x));
  const std::vector<double> rhs = m.multiply(n).left_multiply(x);
  ASSERT_EQ(lhs.size(), rhs.size());
  for (std::size_t i = 0; i < lhs.size(); ++i) {
    EXPECT_NEAR(lhs[i], rhs[i], 1e-12);
  }
}

TEST(SolveLinear, RecoversKnownSolution) {
  DenseMatrix a(3, 3);
  // A = [[2,1,0],[1,3,1],[0,1,4]], x = [1,-2,3] => b = [0,-2,10].
  a.at(0, 0) = 2;
  a.at(0, 1) = 1;
  a.at(1, 0) = 1;
  a.at(1, 1) = 3;
  a.at(1, 2) = 1;
  a.at(2, 1) = 1;
  a.at(2, 2) = 4;
  const std::vector<double> x = solve_linear(a, {0.0, -2.0, 10.0});
  ASSERT_EQ(x.size(), 3u);
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], -2.0, 1e-12);
  EXPECT_NEAR(x[2], 3.0, 1e-12);
}

TEST(SolveLinear, RequiresPivoting) {
  // Leading zero pivot: solvable only with row exchange.
  DenseMatrix a(2, 2);
  a.at(0, 1) = 1.0;
  a.at(1, 0) = 1.0;
  const std::vector<double> x = solve_linear(a, {3.0, 5.0});
  EXPECT_NEAR(x[0], 5.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(SolveLinear, SingularThrows) {
  DenseMatrix a(2, 2);
  a.at(0, 0) = 1.0;
  a.at(0, 1) = 2.0;
  a.at(1, 0) = 2.0;
  a.at(1, 1) = 4.0;
  EXPECT_THROW((void)solve_linear(a, {1.0, 2.0}), std::runtime_error);
}

TEST(SolveLinear, ShapeMismatchThrows) {
  const DenseMatrix a(2, 3);
  EXPECT_THROW((void)solve_linear(a, {1.0, 2.0}), std::invalid_argument);
}

/// A small ergodic chain whose stationary law is known in closed form:
/// two-state chain with P(0->1) = a, P(1->0) = b has pi = (b, a)/(a+b).
TEST(Stationary, TwoStateClosedForm) {
  const double a = 0.3;
  const double b = 0.1;
  DenseMatrix p(2, 2);
  p.at(0, 0) = 1 - a;
  p.at(0, 1) = a;
  p.at(1, 0) = b;
  p.at(1, 1) = 1 - b;
  const std::vector<double> pi = stationary_distribution(p);
  EXPECT_NEAR(pi[0], b / (a + b), 1e-12);
  EXPECT_NEAR(pi[1], a / (a + b), 1e-12);
}

TEST(Stationary, DirectSolveAgreesWithPowerIteration) {
  // Random 6-state ergodic chain.
  Rng rng(42);
  const std::size_t s = 6;
  DenseMatrix p(s, s);
  for (std::size_t r = 0; r < s; ++r) {
    double sum = 0.0;
    for (std::size_t c = 0; c < s; ++c) {
      p.at(r, c) = rng.uniform() + 0.01;  // strictly positive => ergodic
      sum += p.at(r, c);
    }
    for (std::size_t c = 0; c < s; ++c) p.at(r, c) /= sum;
  }
  const std::vector<double> direct = stationary_distribution(p);
  const std::vector<double> power = stationary_by_power_iteration(p);
  EXPECT_LT(total_variation(direct, power), 1e-10);
}

TEST(Stationary, IsInvariantUnderTheChain) {
  Rng rng(43);
  const std::size_t s = 5;
  DenseMatrix p(s, s);
  for (std::size_t r = 0; r < s; ++r) {
    double sum = 0.0;
    for (std::size_t c = 0; c < s; ++c) {
      p.at(r, c) = rng.uniform() + 0.05;
      sum += p.at(r, c);
    }
    for (std::size_t c = 0; c < s; ++c) p.at(r, c) /= sum;
  }
  const std::vector<double> pi = stationary_distribution(p);
  const std::vector<double> pi_next = p.left_multiply(pi);
  EXPECT_LT(total_variation(pi, pi_next), 1e-12);
}

TEST(TotalVariation, BasicProperties) {
  const std::vector<double> a = {0.5, 0.5, 0.0};
  const std::vector<double> b = {0.0, 0.5, 0.5};
  EXPECT_DOUBLE_EQ(total_variation(a, a), 0.0);
  EXPECT_DOUBLE_EQ(total_variation(a, b), 0.5);
  EXPECT_DOUBLE_EQ(total_variation(b, a), 0.5);
  const std::vector<double> point1 = {1.0, 0.0};
  const std::vector<double> point2 = {0.0, 1.0};
  EXPECT_DOUBLE_EQ(total_variation(point1, point2), 1.0);
  EXPECT_THROW((void)total_variation(a, point1), std::invalid_argument);
}

}  // namespace
}  // namespace rbb
