// E10 -- Appendix B: the arrival counts X_1, X_2 at a fixed bin are NOT
// negatively associated.  For n = 2 started from (1, 1):
//   P(X1 = 0) = 1/4,  P(X2 = 0) = 3/8,  P(X1 = 0, X2 = 0) = 1/8 > 3/32.
//
// Table: Monte-Carlo estimates vs the exact values, and the inequality
// that defeats negative association.
#include <cmath>

#include "analysis/experiments.hpp"
#include "bench/bench_common.hpp"

int main(int argc, char** argv) {
  using namespace rbb;
  Cli cli = bench::make_cli(
      "E10: Appendix-B counterexample to negative association (n = 2)");
  if (!cli.parse(argc, argv)) return 0;

  const BenchScale scale = bench_scale();
  const std::uint64_t trials =
      by_scale<std::uint64_t>(scale, 200000, 4000000, 40000000);
  const NegAssocResult r = run_negative_association(trials, cli.u64("seed"));

  Table table({"quantity", "exact", "estimate", "abs error"});
  table.row()
      .cell(std::string("P(X1 = 0)"))
      .cell(0.25, 6)
      .cell(r.p_x1_zero, 6)
      .cell(std::abs(r.p_x1_zero - 0.25), 6);
  table.row()
      .cell(std::string("P(X2 = 0)"))
      .cell(0.375, 6)
      .cell(r.p_x2_zero, 6)
      .cell(std::abs(r.p_x2_zero - 0.375), 6);
  table.row()
      .cell(std::string("P(X1 = 0, X2 = 0)"))
      .cell(0.125, 6)
      .cell(r.p_both_zero, 6)
      .cell(std::abs(r.p_both_zero - 0.125), 6);
  table.row()
      .cell(std::string("P(X1=0) * P(X2=0)"))
      .cell(0.09375, 6)
      .cell(r.p_x1_zero * r.p_x2_zero, 6)
      .cell(std::string(r.p_both_zero > r.p_x1_zero * r.p_x2_zero
                            ? "joint > product: NOT neg. assoc."
                            : "UNEXPECTED"));
  bench::emit(table, "E10_neg_assoc",
              "arrivals are positively correlated (Appendix B)", scale);
  return 0;
}
