// Statistical oracle: the mixed-regime class pick removes a uniformly
// random ball, so departure classes are proportional to the bin's
// per-class counts -- under both stream policies.  The scenario pins
// the distribution exactly: all balls sit in bin 0 with rate 1, so the
// round's single departure is one uniform ball from a known census and
// the per-seed class frequencies must follow count / m.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/mixed_config.hpp"
#include "core/mixed_process.hpp"
#include "par/sharded_mixed.hpp"
#include "support/rng.hpp"
#include "stat_oracle.hpp"

namespace rbb {
namespace {

using testing::chi_square;
using testing::chi_square_bound;

/// 4 bins; bin 0 holds every ball with class census {24, 12, 4} at
/// weights {1, 2, 8}; rate 1 everywhere, no capacities.
MixedSpec one_hot_spec() {
  MixedSpec spec;
  spec.bins = 4;
  spec.balls = 40;
  spec.weights = {"census", {1, 2, 8}, {0.6, 0.3, 0.1}};
  spec.rates.assign(spec.bins, 1);
  spec.capacities.assign(spec.bins, 0);
  spec.class_counts.assign(static_cast<std::size_t>(spec.bins) * 3, 0);
  spec.class_counts[0] = 24;
  spec.class_counts[1] = 12;
  spec.class_counts[2] = 4;
  return spec;
}

const std::vector<double> kClassProbability = {24.0 / 40, 12.0 / 40,
                                               4.0 / 40};
constexpr std::uint32_t kTrials = 4000;

TEST(WeightedDeparture, SequentialStreamClassPickMatchesCensus) {
  const MixedSpec spec = one_hot_spec();
  std::vector<std::uint64_t> by_class(3, 0);
  for (std::uint32_t s = 0; s < kTrials; ++s) {
    MixedProcess process(spec, Rng(11, s));
    process.step();
    ASSERT_EQ(process.last_departures(), 1u);
    for (std::uint32_t c = 0; c < 3; ++c) {
      by_class[c] += process.last_departures_by_class()[c];
    }
  }
  EXPECT_LT(chi_square(by_class, kClassProbability), chi_square_bound(2));
}

TEST(WeightedDeparture, CounterStreamClassPickMatchesCensus) {
  const MixedSpec spec = one_hot_spec();
  std::vector<std::uint64_t> by_class(3, 0);
  for (std::uint32_t s = 0; s < kTrials; ++s) {
    par::SequentialCounterMixedProcess process(spec, mix64(22, s));
    process.step();
    ASSERT_EQ(process.last_departures(), 1u);
    for (std::uint32_t c = 0; c < 3; ++c) {
      by_class[c] += process.last_departures_by_class()[c];
    }
  }
  EXPECT_LT(chi_square(by_class, kClassProbability), chi_square_bound(2));
}

TEST(WeightedDeparture, DestinationOfDepartedBallIsUniform) {
  // The departed ball's destination draw spreads uniformly over all
  // bins (including back into bin 0): after one round the arrival sits
  // in a uniform bin, visible as the loads delta.
  const MixedSpec spec = one_hot_spec();
  std::vector<std::uint64_t> dest(spec.bins, 0);
  for (std::uint32_t s = 0; s < kTrials; ++s) {
    MixedProcess process(spec, Rng(33, s));
    process.step();
    for (std::uint32_t u = 1; u < spec.bins; ++u) {
      dest[u] += process.loads()[u];
    }
    // Bin 0 lost one and possibly regained it.
    dest[0] += process.loads()[0] - (spec.balls - 1);
  }
  EXPECT_LT(testing::chi_square_uniform(dest),
            chi_square_bound(spec.bins - 1));
}

}  // namespace
}  // namespace rbb
