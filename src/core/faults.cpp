#include "core/faults.hpp"

#include <algorithm>
#include <stdexcept>

namespace rbb {

const char* to_string(FaultStrategy strategy) {
  switch (strategy) {
    case FaultStrategy::kAllToOne: return "all-to-one";
    case FaultStrategy::kRandom: return "random";
    case FaultStrategy::kHalfBins: return "half-bins";
    case FaultStrategy::kReverseSort: return "reverse-sort";
  }
  return "unknown";
}

FaultStrategy fault_strategy_from_string(const std::string& s) {
  if (s == "all-to-one") return FaultStrategy::kAllToOne;
  if (s == "random") return FaultStrategy::kRandom;
  if (s == "half-bins") return FaultStrategy::kHalfBins;
  if (s == "reverse-sort") return FaultStrategy::kReverseSort;
  throw std::invalid_argument("fault_strategy_from_string: unknown: " + s);
}

LoadConfig apply_fault(FaultStrategy strategy, std::uint32_t bins,
                       std::uint64_t balls, const LoadConfig& current,
                       Rng& rng) {
  switch (strategy) {
    case FaultStrategy::kAllToOne:
      return make_config(InitialConfig::kAllInOne, bins, balls, rng);
    case FaultStrategy::kRandom:
      return make_config(InitialConfig::kRandom, bins, balls, rng);
    case FaultStrategy::kHalfBins:
      return make_config(InitialConfig::kHalfLoaded, bins, balls, rng);
    case FaultStrategy::kReverseSort: {
      if (current.size() != bins || total_balls(current) != balls) {
        throw std::invalid_argument("apply_fault: bad current configuration");
      }
      LoadConfig q = current;
      // Concentrate the existing profile: heaviest loads first.
      std::sort(q.begin(), q.end(), std::greater<>());
      return q;
    }
  }
  throw std::logic_error("apply_fault: bad strategy");
}

LoadConfig apply_partial_fault(const LoadConfig& current, std::uint64_t k) {
  if (current.empty()) {
    throw std::invalid_argument("apply_partial_fault: empty configuration");
  }
  LoadConfig q = current;
  // Repeatedly take one ball from the heaviest bin (!= 0) and move it to
  // bin 0.  A max-heap of (load, bin) would be asymptotically better, but
  // k is at most m and this runs outside any hot loop.
  for (std::uint64_t moved = 0; moved < k; ++moved) {
    std::uint32_t heaviest = 0;
    std::uint32_t best_load = 0;
    for (std::uint32_t u = 1; u < q.size(); ++u) {
      if (q[u] > best_load) {
        best_load = q[u];
        heaviest = u;
      }
    }
    if (best_load == 0) break;  // everything already in bin 0
    --q[heaviest];
    ++q[0];
  }
  return q;
}

std::vector<std::uint32_t> apply_fault_tokens(FaultStrategy strategy,
                                              std::uint32_t bins,
                                              std::uint32_t tokens, Rng& rng) {
  if (bins == 0) throw std::invalid_argument("apply_fault_tokens: bins == 0");
  std::vector<std::uint32_t> pos(tokens, 0);
  switch (strategy) {
    case FaultStrategy::kAllToOne:
      // all zeros already
      break;
    case FaultStrategy::kRandom:
      for (auto& p : pos) p = rng.index(bins);
      break;
    case FaultStrategy::kHalfBins: {
      const std::uint32_t half = std::max<std::uint32_t>(1, bins / 2);
      for (std::uint32_t i = 0; i < tokens; ++i) pos[i] = i % half;
      break;
    }
    case FaultStrategy::kReverseSort:
      // For tokens there is no pre-existing profile to permute; pile the
      // tokens onto a sqrt(n)-sized set of bins (strongly adversarial but
      // distinct from all-to-one).
      {
        std::uint32_t spread = 1;
        while (spread * spread < bins) ++spread;
        for (std::uint32_t i = 0; i < tokens; ++i) pos[i] = i % spread;
      }
      break;
  }
  return pos;
}

}  // namespace rbb
