// The experiment registry behind the `rbb` CLI (DESIGN.md Sect. 1).
//
// Each of the repository's experiments registers exactly once: a CLI
// name, the DESIGN.md claim it reproduces (E1..E21, empty for the extras
// that ride outside the numbered map), a one-line title, prose
// description, typed parameter specs, and a run function returning a
// structured ResultSet.  Everything downstream is derived from this
// single declaration:
//
//   rbb list / describe / run / sweep   (runner/runner.cpp)
//   the generated docs/experiments.md   (runner/docgen.cpp)
//   the back-compat bench/exp_* mains   (runner/legacy.cpp)
//   the registry completeness test      (tests/runner/)
//
// so the catalog, the CLI surface, and the code can never drift apart.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "engine/trials.hpp"
#include "runner/params.hpp"
#include "runner/result.hpp"
#include "support/scale.hpp"
#include "support/thread_pool.hpp"

namespace rbb::runner {

/// What an experiment's run function sees: its parsed parameters plus
/// the bench scale the runner resolved (CLI --scale or RBB_BENCH_SCALE).
struct RunContext {
  const ParamValues& params;
  BenchScale scale = BenchScale::kDefault;

  [[nodiscard]] std::uint64_t seed() const { return params.u64("seed"); }

  /// True when the run asked for the sharded round kernel (src/par/)
  /// via --backend=sharded.  Only reachable inside experiments whose
  /// declared ProcessFamily is backend-capable; run_experiment rejects
  /// the flag elsewhere.
  [[nodiscard]] bool sharded() const {
    return params.str("backend") == "sharded";
  }

  /// The --threads request for the sharded backend: 0 = the shared
  /// global pool (all hardware threads), k = a private pool of k.
  [[nodiscard]] unsigned threads() const {
    return static_cast<unsigned>(params.u32("threads"));
  }

  /// The trial count: the --trials override wins (range-checked), else
  /// the scale picks.
  [[nodiscard]] std::uint32_t trials_or(std::uint32_t smoke,
                                        std::uint32_t dflt,
                                        std::uint32_t paper) const {
    const std::uint32_t cli_trials = params.u32("trials");
    if (cli_trials != 0) return cli_trials;
    return by_scale(scale, smoke, dflt, paper);
  }

  /// Checkpointing surface (--checkpoint-dir/--checkpoint-every/
  /// --checkpoint-keep, plus the resume-from path the `rbb resume` verb
  /// fills in).  Only checkpoint-capable experiments see non-default
  /// values; run_experiment rejects the flags elsewhere.
  [[nodiscard]] std::string checkpoint_dir() const {
    return params.str("checkpoint-dir");
  }
  [[nodiscard]] std::uint64_t checkpoint_every() const {
    return params.u64("checkpoint-every");
  }
  [[nodiscard]] std::uint64_t checkpoint_keep() const {
    return params.u64("checkpoint-keep");
  }
  [[nodiscard]] std::string resume_from() const {
    return params.str("resume-from");
  }

  /// Splits the thread budget between trial fan-out and intra-instance
  /// sharded rounds (--trial-parallelism; engine/trials.hpp).
  ///
  ///   auto, --threads unset   the legacy plan: trials fan out on the
  ///                           shared pool, instances run sequential
  ///   auto, --threads=T       min(trials, T) concurrent trials, each
  ///                           instance sharded over T / that many
  ///   K                       exactly min(trials, K) concurrent
  ///                           trials; the budget (--threads, else all
  ///                           hardware threads) is split evenly
  ///
  /// Throws std::invalid_argument on a malformed value (anything other
  /// than "auto" or a positive integer).
  [[nodiscard]] TrialPlan trial_plan(std::uint32_t trials) const;
};

/// Which process-core family an experiment's run function instantiates
/// (the variant axis of the policy matrix, DESIGN.md Sect. 5).
///
/// This replaced the old hand-maintained `sharded_capable` bool: an
/// experiment declares WHAT it runs, and whether --backend=sharded is
/// accepted is *derived* from the declared family -- backend_capable()
/// checks, at compile time, that a sharded instantiation of the
/// family's kernel exists and satisfies the engine's SimProcess
/// concept.  Adding a sharded port to a kernel therefore flips every
/// experiment of that family at once, and the flag can never drift
/// from the code.
enum class ProcessFamily {
  kNone,      // no round kernel (exact chains, Jackson, samplers, ...)
  kLoadOnly,  // the paper's load-only process
  kToken,     // FIFO token / traversal processes
  kTetris,    // the auxiliary Tetris process
  kDChoices,  // repeated d-choices
  kThreshold, // 1-2-3-Toolkit threshold allocation
  kLeaky,     // leaky bins
  kMixed,     // mixed-regime engine (m != n, weights, heterogeneity)
  kKernelSuite,  // drives several kernel families (sharded_scaling)
};

/// True iff the family's kernel has a sharded instantiation (derived
/// from the src/par/ types; see registry.cpp).
[[nodiscard]] bool backend_capable(ProcessFamily family);

/// One registered experiment.
struct Experiment {
  std::string name;         // CLI name, e.g. "convergence"
  std::string claim;        // DESIGN.md Sect. 4 E-number, "" for extras
  std::string title;        // one-line claim summary (list / docs)
  std::string description;  // prose for describe / docs
  /// The process family the run function drives.  --backend=sharded is
  /// accepted iff backend_capable(family); run_experiment rejects it
  /// elsewhere.  kNone (the default) never accepts the flag.
  ProcessFamily family = ProcessFamily::kNone;
  /// True for single-instance experiments that honor the checkpoint
  /// surface (--checkpoint-dir/--checkpoint-every, `rbb resume`).
  /// run_experiment rejects the checkpoint flags on every other
  /// experiment so they can never be silently ignored.
  bool checkpointable = false;
  std::vector<ParamSpec> params;  // registry prepends seed/trials/backend/...
  std::function<ResultSet(const RunContext&)> run;
};

/// Name-keyed experiment collection.  add() validates the declaration
/// and prepends the common seed/trials specs every experiment shares.
class Registry {
 public:
  /// Registers an experiment; throws std::invalid_argument on an empty
  /// name, a duplicate name, or a missing run function.
  void add(Experiment experiment);

  [[nodiscard]] const Experiment* find(const std::string& name) const;

  /// Registration order.
  [[nodiscard]] const std::vector<Experiment>& experiments() const {
    return experiments_;
  }

  /// Catalog order: by numeric claim (E1, E2, ...), then the claimless
  /// extras, alphabetically within ties.
  [[nodiscard]] std::vector<const Experiment*> catalog() const;

 private:
  std::vector<Experiment> experiments_;
};

/// One finished experiment run: the structured results plus the
/// provenance metadata (params, seed, scale, git rev, wall time) every
/// serialization format embeds.
struct CompletedRun {
  ResultSet results;
  RunMeta meta;
};

/// Runs `experiment` with `values` at `scale` under a wall-time clock
/// and assembles the metadata -- the one execution path shared by
/// `rbb run`, `rbb sweep`, and the back-compat bench mains.  Propagates
/// whatever the run function throws (callers own the error boundary).
[[nodiscard]] CompletedRun run_experiment(const Experiment& experiment,
                                          const ParamValues& values,
                                          BenchScale scale);

/// The process-wide registry holding all experiments (built on first
/// use via register_all_experiments).
[[nodiscard]] const Registry& default_registry();

/// Registers every experiment in src/runner/experiments/ (one
/// register_* function per file; see register_all.cpp).
void register_all_experiments(Registry& registry);

/// The n-sweep most experiments share, by scale (the old
/// bench_common.hpp helper, now owned by the runner layer).
[[nodiscard]] std::vector<std::uint32_t> default_n_sweep(BenchScale scale);

/// Compile-time git revision baked in by CMake ("unknown" outside a
/// configured checkout); stamped into every run's metadata.
[[nodiscard]] const char* git_revision();

}  // namespace rbb::runner
