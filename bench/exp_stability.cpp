// E1 -- Theorem 1 stability window.  Back-compat shim: the experiment now lives in the
// registry (src/runner/experiments/stability.cpp); this binary behaves like
// `rbb run stability` with table output, honoring RBB_BENCH_SCALE and
// RBB_CSV_DIR as it always did.
#include "runner/legacy.hpp"

int main(int argc, char** argv) {
  return rbb::runner::legacy_bench_main("stability", argc, argv);
}
