// E1 -- Theorem 1 (stability): from a legitimate configuration the
// repeated balls-into-bins process visits only legitimate configurations
// over a long window.
//
// Table: for each n, the per-trial maximum load over a window of c*n
// rounds, its ratio to log2(n) (the paper's O(log n) constant made
// visible), the minimum empty-bin fraction (Lemma 1 floor: 1/4), and the
// fraction of trials whose whole window stayed legitimate (beta = 4).
#include <vector>

#include "analysis/experiments.hpp"
#include "bench/bench_common.hpp"
#include "support/bounds.hpp"

int main(int argc, char** argv) {
  using namespace rbb;
  Cli cli = bench::make_cli(
      "E1: stability window of the repeated balls-into-bins process "
      "(Theorem 1, first part)");
  cli.add_u64("window-factor", 0, "window = factor * n rounds (0 = scale)");
  cli.add_u64("n", 0, "run a single n instead of the scale sweep");
  if (!cli.parse(argc, argv)) return 0;

  const BenchScale scale = bench_scale();
  const std::uint32_t trials = bench::trials_for(cli, scale, 2, 4, 8);
  const std::uint64_t wf = cli.u64("window-factor") != 0
                               ? cli.u64("window-factor")
                               : by_scale<std::uint64_t>(scale, 5, 20, 50);
  const std::vector<std::uint32_t> ns =
      cli.u64("n") != 0
          ? std::vector<std::uint32_t>{static_cast<std::uint32_t>(
                cli.u64("n"))}
          : bench::n_sweep(scale);

  Table table({"n", "window (rounds)", "trials", "max load (mean)",
               "max load (worst)", "max / log2 n", "min empty frac",
               "legit frac (beta=4)"});
  for (const std::uint32_t n : ns) {
    StabilityParams p;
    p.n = n;
    p.rounds = wf * n;
    p.trials = trials;
    p.seed = cli.u64("seed");
    p.start = InitialConfig::kOnePerBin;
    const StabilityResult r = run_stability(p);
    table.row()
        .cell(std::uint64_t{n})
        .cell(p.rounds)
        .cell(std::uint64_t{trials})
        .cell(r.window_max.mean(), 2)
        .cell(std::uint64_t{r.overall_max})
        .cell(r.window_max.mean() / log2n(n), 3)
        .cell(r.min_empty_fraction.min(), 3)
        .cell(r.legit_window_fraction, 2);
  }
  bench::emit(table, "E1_stability",
              "window max load stays O(log n) (Theorem 1)", scale);
  return 0;
}
