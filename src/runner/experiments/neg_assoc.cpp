// E10 -- Appendix B: the arrival counts X_1, X_2 at a fixed bin are NOT
// negatively associated.  For n = 2 started from (1, 1):
//   P(X1 = 0) = 1/4,  P(X2 = 0) = 3/8,  P(X1 = 0, X2 = 0) = 1/8 > 3/32.
#include <cmath>

#include "analysis/experiments.hpp"
#include "runner/registry.hpp"

namespace rbb::runner {

void register_neg_assoc(Registry& registry) {
  Experiment e;
  e.name = "neg_assoc";
  e.claim = "E10";
  e.title = "arrivals are positively correlated (Appendix B)";
  e.description =
      "Monte-Carlo estimates of the Appendix-B counterexample to "
      "negative association for n = 2 started from one ball per bin "
      "(X_t = arrivals at bin 0 in round t): P(X1 = 0) = 1/4, "
      "P(X2 = 0) = 3/8, and the joint P(X1 = 0, X2 = 0) = 1/8 exceeds "
      "the product 3/32 -- the inequality that defeats negative "
      "association.";
  e.run = [](const RunContext& ctx) {
    const std::uint64_t trials = ctx.trials_or(200000, 4000000, 40000000);
    const NegAssocResult r = run_negative_association(trials, ctx.seed());

    ResultSet rs;
    Table& table = rs.add_table(
        "E10_neg_assoc", "arrivals are positively correlated (Appendix B)",
        {"quantity", "exact", "estimate", "abs error"});
    table.row()
        .cell(std::string("P(X1 = 0)"))
        .cell(0.25, 6)
        .cell(r.p_x1_zero, 6)
        .cell(std::abs(r.p_x1_zero - 0.25), 6);
    table.row()
        .cell(std::string("P(X2 = 0)"))
        .cell(0.375, 6)
        .cell(r.p_x2_zero, 6)
        .cell(std::abs(r.p_x2_zero - 0.375), 6);
    table.row()
        .cell(std::string("P(X1 = 0, X2 = 0)"))
        .cell(0.125, 6)
        .cell(r.p_both_zero, 6)
        .cell(std::abs(r.p_both_zero - 0.125), 6);
    table.row()
        .cell(std::string("P(X1=0) * P(X2=0)"))
        .cell(0.09375, 6)
        .cell(r.p_x1_zero * r.p_x2_zero, 6)
        .cell(std::string(r.p_both_zero > r.p_x1_zero * r.p_x2_zero
                              ? "joint > product: NOT neg. assoc."
                              : "UNEXPECTED"));
    return rs;
  };
  registry.add(std::move(e));
}

}  // namespace rbb::runner
