// Parity tests for the pipelined multi-round path (core/kernel/
// pipeline.hpp).  run(rounds) takes the double-buffered epoch-protocol
// path whenever the executor can host a resident team; these tests pin
// that the pipelined trajectory is bit-identical to the barriered
// step() loop AND to the sequential counter-stream oracles -- for every
// kernel family, worker count {1, 2, 8} and shard size {64, 256, 1024}.
// threads = 1 runs inline (the team is refused, run() falls back to
// barriered rounds), so that column doubles as a fallback-path check.
//
// The hot-shard straggler cases are the schedule the pipeline has to
// survive: one stripe carries (almost) all the work, so its owner
// commits rounds long after every peer has raced ahead to the next
// throw -- maximum overlap, maximum reuse pressure on the parity
// buffers.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/config.hpp"
#include "par/sharded_mixed.hpp"
#include "par/sharded_process.hpp"
#include "par/sharded_token_process.hpp"
#include "par/sharded_variants.hpp"

namespace rbb::par {
namespace {

constexpr std::uint32_t kN = 4096;
constexpr std::uint64_t kSeed = 0x9a11edULL;
constexpr std::uint64_t kRounds = 48;

const ShardedOptions kGrid[] = {
    {.threads = 1, .shard_size = 64},   {.threads = 1, .shard_size = 256},
    {.threads = 1, .shard_size = 1024}, {.threads = 2, .shard_size = 64},
    {.threads = 2, .shard_size = 256},  {.threads = 2, .shard_size = 1024},
    {.threads = 8, .shard_size = 64},   {.threads = 8, .shard_size = 256},
    {.threads = 8, .shard_size = 1024},
};

LoadConfig start_config(InitialConfig kind = InitialConfig::kOnePerBin) {
  Rng rng(99);
  return make_config(kind, kN, kN, rng);
}

// --- load-only --------------------------------------------------------------

TEST(PipelinedParity, LoadMatchesBarrieredAndOracle) {
  SequentialCounterProcess oracle(start_config(), kSeed);
  RoundStats want{};
  for (std::uint64_t r = 0; r < kRounds; ++r) want = oracle.step();

  for (const ShardedOptions& options : kGrid) {
    ShardedRepeatedBallsProcess pipelined(start_config(), kSeed, options);
    const RoundStats got = pipelined.run(kRounds);
    EXPECT_EQ(got.max_load, want.max_load);
    EXPECT_EQ(got.empty_bins, want.empty_bins);
    EXPECT_EQ(got.departures, want.departures);
    EXPECT_EQ(pipelined.loads(), oracle.loads());
    EXPECT_EQ(pipelined.round(), kRounds);
    ASSERT_NO_THROW(pipelined.check_invariants());

    ShardedRepeatedBallsProcess barriered(start_config(), kSeed, options);
    for (std::uint64_t r = 0; r < kRounds; ++r) barriered.step();
    EXPECT_EQ(pipelined.loads(), barriered.loads());
  }
}

TEST(PipelinedParity, LoadRunThenStepContinuesTheSameTrajectory) {
  // A pipelined run must leave the kernel in a state from which plain
  // barriered stepping continues the exact oracle trajectory (round
  // counter, scratch and scatter buffers all consistent).
  SequentialCounterProcess oracle(start_config(), kSeed);
  ShardedRepeatedBallsProcess sharded(start_config(), kSeed,
                                      {.threads = 2, .shard_size = 256});
  for (std::uint64_t r = 0; r < kRounds; ++r) oracle.step();
  sharded.run(kRounds / 2);
  for (std::uint64_t r = kRounds / 2; r < kRounds; ++r) sharded.step();
  EXPECT_EQ(sharded.loads(), oracle.loads());
  EXPECT_EQ(sharded.round(), kRounds);
}

TEST(PipelinedParity, LoadBackToBackRunsReuseBothBufferSets) {
  // Consecutive pipelined runs of odd length start each run on the
  // even-parity set with buffers from the previous run's final rounds
  // still sized; the trajectory must not care.
  SequentialCounterProcess oracle(start_config(), kSeed);
  ShardedRepeatedBallsProcess sharded(start_config(), kSeed,
                                      {.threads = 8, .shard_size = 64});
  for (std::uint64_t r = 0; r < 21; ++r) oracle.step();
  sharded.run(7);
  sharded.run(7);
  sharded.run(7);
  EXPECT_EQ(sharded.loads(), oracle.loads());
  EXPECT_EQ(sharded.round(), 21u);
}

// --- hot-shard stragglers ---------------------------------------------------

TEST(PipelinedParity, LoadSurvivesHotShardStraggler) {
  // All n balls in bin 0: stripe 0's owner throws and commits nearly
  // all the work while every peer spins ahead.
  SequentialCounterProcess oracle(start_config(InitialConfig::kAllInOne),
                                  kSeed);
  for (std::uint64_t r = 0; r < kRounds; ++r) oracle.step();

  for (const ShardedOptions& options :
       {ShardedOptions{.threads = 8, .shard_size = 64},
        ShardedOptions{.threads = 2, .shard_size = 1024}}) {
    ShardedRepeatedBallsProcess pipelined(
        start_config(InitialConfig::kAllInOne), kSeed, options);
    pipelined.run(kRounds);
    EXPECT_EQ(pipelined.loads(), oracle.loads());
    ASSERT_NO_THROW(pipelined.check_invariants());
  }
}

TEST(PipelinedParity, MixedSurvivesSkewedRateStraggler) {
  // stalled-tenth: 10% of bins release nothing, the rest drain fast --
  // the drop accounting is commit-order sensitive, so any buffer-reuse
  // bug shows up as a different bounce set.
  const MixedSpec spec = make_mixed_spec(1024, 8.0, "zipf", "stalled-tenth");
  SequentialCounterMixedProcess oracle(spec, kSeed);
  MixedRoundStats want{};
  for (std::uint64_t r = 0; r < kRounds; ++r) want = oracle.step();

  ShardedMixedProcess pipelined(spec, kSeed, {.threads = 8, .shard_size = 64});
  const MixedRoundStats got = pipelined.run(kRounds);
  EXPECT_EQ(got.max_load, want.max_load);
  EXPECT_EQ(got.drops, want.drops);
  EXPECT_EQ(got.total_weight, want.total_weight);
  EXPECT_EQ(pipelined.loads(), oracle.loads());
  EXPECT_EQ(pipelined.dropped_balls(), oracle.dropped_balls());
  ASSERT_NO_THROW(pipelined.check_invariants());
}

// --- refill variants (tetris, leaky) ----------------------------------------

TEST(PipelinedParity, TetrisMatchesBarrieredAndOracle) {
  SequentialCounterTetrisProcess oracle(start_config(InitialConfig::kRandom),
                                        kSeed);
  TetrisRoundStats want{};
  for (std::uint64_t r = 0; r < kRounds; ++r) want = oracle.step();

  for (const ShardedOptions& options : kGrid) {
    ShardedTetrisProcess pipelined(start_config(InitialConfig::kRandom), kSeed,
                                   0, options);
    const TetrisRoundStats got = pipelined.run(kRounds);
    EXPECT_EQ(got.max_load, want.max_load);
    EXPECT_EQ(got.empty_bins, want.empty_bins);
    EXPECT_EQ(got.total_balls, want.total_balls);
    EXPECT_EQ(pipelined.loads(), oracle.loads());
    for (std::uint32_t u = 0; u < kN; ++u) {
      ASSERT_EQ(pipelined.first_empty_round(u), oracle.first_empty_round(u))
          << "bin " << u;
    }
    ASSERT_NO_THROW(pipelined.check_invariants());
  }
}

TEST(PipelinedParity, LeakyMatchesOracleIncludingArrivalDraws) {
  // Leaky bins draw a Binomial(n, lambda) arrival count per round; the
  // pipelined path hoists those draws ahead of the team, so the last
  // round's arrivals figure is the cross-check that the hoist hits the
  // same substream.
  constexpr double kLambda = 0.6;
  SequentialCounterLeakyBinsProcess oracle(start_config(), kLambda, kSeed);
  LeakyRoundStats want{};
  for (std::uint64_t r = 0; r < kRounds; ++r) want = oracle.step();

  for (const ShardedOptions& options :
       {ShardedOptions{.threads = 2, .shard_size = 256},
        ShardedOptions{.threads = 8, .shard_size = 64}}) {
    ShardedLeakyBinsProcess pipelined(start_config(), kLambda, kSeed, options);
    const LeakyRoundStats got = pipelined.run(kRounds);
    EXPECT_EQ(got.total_balls, want.total_balls);
    EXPECT_EQ(got.arrivals, want.arrivals);
    EXPECT_EQ(pipelined.loads(), oracle.loads());
    ASSERT_NO_THROW(pipelined.check_invariants());
  }
}

// --- choose-phase variants (d-choices, threshold) ---------------------------

TEST(PipelinedParity, DChoicesMatchesBarrieredAndOracle) {
  constexpr std::uint32_t kD = 3;
  SequentialCounterDChoicesProcess oracle(start_config(), kD, kSeed);
  DChoicesRoundStats want{};
  for (std::uint64_t r = 0; r < kRounds; ++r) want = oracle.step();

  for (const ShardedOptions& options : kGrid) {
    ShardedDChoicesProcess pipelined(start_config(), kD, kSeed, options);
    const DChoicesRoundStats got = pipelined.run(kRounds);
    EXPECT_EQ(got.max_load, want.max_load);
    EXPECT_EQ(got.empty_bins, want.empty_bins);
    EXPECT_EQ(got.departures, want.departures);
    EXPECT_EQ(pipelined.loads(), oracle.loads());
    ASSERT_NO_THROW(pipelined.check_invariants());
  }
}

TEST(PipelinedParity, ThresholdMatchesOracle) {
  constexpr load_t kThreshold = 4;
  constexpr std::uint32_t kProbes = 2;
  SequentialCounterThresholdProcess oracle(start_config(), kThreshold, kProbes,
                                           kSeed);
  for (std::uint64_t r = 0; r < kRounds; ++r) oracle.step();

  ShardedThresholdProcess pipelined(start_config(), kThreshold, kProbes, kSeed,
                                    {.threads = 8, .shard_size = 256});
  pipelined.run(kRounds);
  EXPECT_EQ(pipelined.loads(), oracle.loads());
  ASSERT_NO_THROW(pipelined.check_invariants());
}

// --- token ------------------------------------------------------------------

TEST(PipelinedParity, TokenMatchesBarrieredAndOracle) {
  SequentialCounterTokenProcess oracle(kN, identity_placement(kN), kSeed);
  for (std::uint64_t r = 0; r < kRounds; ++r) oracle.step();

  for (const ShardedOptions& options : kGrid) {
    ShardedTokenProcess pipelined(kN, identity_placement(kN), kSeed, options);
    pipelined.run(kRounds);
    EXPECT_EQ(pipelined.loads(), oracle.loads());
    for (std::uint32_t i = 0; i < kN; ++i) {
      ASSERT_EQ(pipelined.token_bin(i), oracle.token_bin(i)) << "token " << i;
      ASSERT_EQ(pipelined.progress(i), oracle.progress(i)) << "token " << i;
    }
    ASSERT_NO_THROW(pipelined.check_invariants());
  }
}

TEST(PipelinedParity, TokenHotQueueStraggler) {
  // Every token starts in bin 0: the front stripe drains one token per
  // round while peers overlap far ahead.
  SequentialCounterTokenProcess oracle(
      kN, std::vector<std::uint32_t>(kN, 0u), kSeed);
  for (std::uint64_t r = 0; r < kRounds; ++r) oracle.step();

  ShardedTokenProcess pipelined(kN, std::vector<std::uint32_t>(kN, 0u), kSeed,
                                {.threads = 8, .shard_size = 64});
  pipelined.run(kRounds);
  EXPECT_EQ(pipelined.loads(), oracle.loads());
  for (std::uint32_t i = 0; i < kN; ++i) {
    ASSERT_EQ(pipelined.token_bin(i), oracle.token_bin(i)) << "token " << i;
  }
}

// --- mixed ------------------------------------------------------------------

TEST(PipelinedParity, MixedMatchesBarrieredAndOracle) {
  const MixedSpec spec = make_mixed_spec(1024, 8.0, "zipf", "capped");
  SequentialCounterMixedProcess oracle(spec, kSeed);
  MixedRoundStats want{};
  for (std::uint64_t r = 0; r < kRounds; ++r) want = oracle.step();

  for (const ShardedOptions& options : kGrid) {
    ShardedMixedProcess pipelined(spec, kSeed, options);
    const MixedRoundStats got = pipelined.run(kRounds);
    EXPECT_EQ(got.max_load, want.max_load);
    EXPECT_EQ(got.empty_bins, want.empty_bins);
    EXPECT_EQ(got.departures, want.departures);
    EXPECT_EQ(got.drops, want.drops);
    EXPECT_EQ(got.max_weighted_load, want.max_weighted_load);
    EXPECT_EQ(got.total_balls, want.total_balls);
    EXPECT_EQ(got.total_weight, want.total_weight);
    EXPECT_EQ(pipelined.loads(), oracle.loads());
    EXPECT_EQ(pipelined.dropped_balls(), oracle.dropped_balls());
    EXPECT_EQ(pipelined.dropped_weight(), oracle.dropped_weight());
    ASSERT_NO_THROW(pipelined.check_invariants());
  }
}

}  // namespace
}  // namespace rbb::par
