// Quickstart: the repeated balls-into-bins process in ~40 lines.
//
// Starts the process from the worst-case configuration (all n balls in
// one bin), watches it self-stabilize in ~n rounds (Theorem 1), then
// confirms the maximum load stays O(log n) over a long window.
//
//   ./examples/quickstart [--n 1024] [--seed 1]
#include <cstdlib>
#include <iostream>

#include "core/config.hpp"
#include "core/process.hpp"
#include "support/bounds.hpp"
#include "support/cli.hpp"

int main(int argc, char** argv) {
  using namespace rbb;
  Cli cli("quickstart: watch repeated balls-into-bins self-stabilize");
  cli.add_u64("n", 1024, "number of balls and bins");
  cli.add_u64("seed", 1, "RNG seed");
  if (!cli.parse(argc, argv)) return EXIT_SUCCESS;

  const auto n = static_cast<std::uint32_t>(cli.u64("n"));
  Rng rng(cli.u64("seed"));

  // Worst case: every ball piled into bin 0.
  RepeatedBallsProcess process(
      make_config(InitialConfig::kAllInOne, n, n, rng), rng);
  std::cout << "n = " << n << ", start: all " << n << " balls in one bin"
            << " (max load " << process.max_load() << ")\n\n";

  // Phase 1 -- convergence: run until legitimate (max load <= 4 log2 n).
  std::uint64_t t = 0;
  while (!process.is_legitimate() && t < 64ull * n) {
    process.step();
    ++t;
  }
  std::cout << "legitimate after " << t << " rounds  (Theorem 1 predicts "
            << "O(n); that is " << static_cast<double>(t) / n
            << " * n)\n";

  // Phase 2 -- stability: max load over a 20n-round window.
  std::uint32_t window_max = 0;
  for (std::uint64_t s = 0; s < 20ull * n; ++s) {
    window_max = std::max(window_max, process.step().max_load);
  }
  std::cout << "max load over the next " << 20 * n << " rounds: "
            << window_max << "  (= " << window_max / log2n(n)
            << " * log2 n; Theorem 1 predicts O(log n))\n"
            << "empty bins right now: " << process.empty_bins() << " / " << n
            << "  (Lemma 1 predicts >= n/4)\n";
  return EXIT_SUCCESS;
}
