// Sequential reference kernels for the sharded backend (testing / perf
// comparators).
//
// The sharded processes draw every destination from the counter-based
// RNG, so a plain single-threaded loop making the SAME draws must
// reproduce their trajectories bit-for-bit -- that is the oracle the
// parity tests in tests/par/ check against, with no sharding machinery
// on the reference side at all.  The perf bench and the sharded_scaling
// experiment also time these loops as the "what one thread does" floor.
//
// Note these are deliberately NOT the production sequential kernels:
// core/process.hpp and core/token_process.hpp remain the fast xoshiro
// implementations.  The reference kernels differ only in where the
// randomness comes from (counter draws keyed by (round, releasing bin))
// and in applying arrivals in ascending releasing-bin order -- the
// canonical order the sharded commit phase realizes.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/config.hpp"
#include "core/process.hpp"  // RoundStats
#include "core/token_process.hpp"
#include "support/bounds.hpp"
#include "support/counter_rng.hpp"

namespace rbb::par {

/// Single-threaded load-only kernel under the counter-based RNG; the
/// parity oracle for ShardedRepeatedBallsProcess.
class SequentialCounterProcess {
 public:
  explicit SequentialCounterProcess(LoadConfig initial, std::uint64_t seed)
      : loads_(std::move(initial)), rng_(seed), balls_(total_balls(loads_)) {
    if (loads_.empty()) {
      throw std::invalid_argument(
          "SequentialCounterProcess: empty configuration");
    }
    max_load_ = rbb::max_load(loads_);
    empty_ = rbb::empty_bins(loads_);
  }

  RoundStats step() {
    const auto n = static_cast<std::uint32_t>(loads_.size());
    std::uint32_t departures = 0;
    std::uint32_t max_after = 0;
    std::uint32_t zeros = 0;
    scratch_.clear();
    for (std::uint32_t u = 0; u < n; ++u) {
      std::uint32_t& load = loads_[u];
      if (load > 0) {
        --load;
        ++departures;
        scratch_.push_back(rng_.index(round_, u, n));
      }
      if (load == 0) {
        ++zeros;
      } else if (load > max_after) {
        max_after = load;
      }
    }
    max_load_ = max_after;
    empty_ = zeros;
    for (const std::uint32_t dest : scratch_) {
      std::uint32_t& load = loads_[dest];
      if (load == 0) --empty_;
      if (++load > max_load_) max_load_ = load;
    }
    ++round_;
    return RoundStats{max_load_, empty_, departures};
  }

  RoundStats run(std::uint64_t rounds) {
    RoundStats stats{max_load_, empty_, 0};
    for (std::uint64_t t = 0; t < rounds; ++t) stats = step();
    return stats;
  }

  [[nodiscard]] std::uint32_t bin_count() const noexcept {
    return static_cast<std::uint32_t>(loads_.size());
  }
  [[nodiscard]] std::uint64_t ball_count() const noexcept { return balls_; }
  [[nodiscard]] std::uint64_t round() const noexcept { return round_; }
  [[nodiscard]] const LoadConfig& loads() const noexcept { return loads_; }
  [[nodiscard]] std::uint32_t max_load() const noexcept { return max_load_; }
  [[nodiscard]] std::uint32_t empty_bins() const noexcept { return empty_; }
  [[nodiscard]] bool is_legitimate(double beta = 4.0) const {
    return static_cast<double>(max_load_) <= beta * log2n(bin_count());
  }

 private:
  LoadConfig loads_;
  CounterRng rng_;
  std::uint64_t balls_;
  std::uint64_t round_ = 0;
  std::uint32_t max_load_ = 0;
  std::uint32_t empty_ = 0;
  std::vector<std::uint32_t> scratch_;
};

/// Single-threaded FIFO token kernel under the counter-based RNG; the
/// parity oracle for ShardedTokenProcess.  Arrivals are applied in
/// ascending releasing-bin order (the canonical order), so queue states
/// match the sharded port exactly.
class SequentialCounterTokenProcess {
 public:
  SequentialCounterTokenProcess(std::uint32_t bins,
                                std::vector<std::uint32_t> start_bin,
                                std::uint64_t seed)
      : bins_(bins), rng_(seed), token_bin_(std::move(start_bin)) {
    if (bins == 0) {
      throw std::invalid_argument("SequentialCounterTokenProcess: 0 bins");
    }
    queues_.resize(bins);
    progress_.assign(token_bin_.size(), 0);
    for (std::uint32_t token = 0;
         token < static_cast<std::uint32_t>(token_bin_.size()); ++token) {
      if (token_bin_[token] >= bins) {
        throw std::invalid_argument(
            "SequentialCounterTokenProcess: start bin out of range");
      }
      queues_[token_bin_[token]].push(token);
    }
  }

  void step() {
    moves_.clear();
    for (std::uint32_t u = 0; u < bins_; ++u) {
      if (queues_[u].empty()) continue;
      const std::uint32_t token = queues_[u].pop(QueuePolicy::kFifo, dummy_);
      ++progress_[token];
      moves_.emplace_back(rng_.index(round_, u, bins_), token);
    }
    for (const auto& [dest, token] : moves_) {
      queues_[dest].push(token);
      token_bin_[token] = dest;
    }
    ++round_;
  }

  void run(std::uint64_t rounds) {
    for (std::uint64_t t = 0; t < rounds; ++t) step();
  }

  [[nodiscard]] std::uint32_t bin_count() const noexcept { return bins_; }
  [[nodiscard]] std::uint32_t token_count() const noexcept {
    return static_cast<std::uint32_t>(token_bin_.size());
  }
  [[nodiscard]] std::uint64_t round() const noexcept { return round_; }
  [[nodiscard]] std::uint32_t token_bin(std::uint32_t token) const {
    return token_bin_[token];
  }
  [[nodiscard]] std::uint64_t progress(std::uint32_t token) const {
    return progress_[token];
  }
  [[nodiscard]] LoadConfig loads() const {
    LoadConfig loads(bins_, 0);
    for (std::uint32_t u = 0; u < bins_; ++u) {
      loads[u] = static_cast<std::uint32_t>(queues_[u].size());
    }
    return loads;
  }

 private:
  std::uint32_t bins_;
  CounterRng rng_;
  Rng dummy_{0};  // BallQueue::pop needs an Rng&; unused under FIFO
  std::vector<BallQueue> queues_;
  std::vector<std::uint32_t> token_bin_;
  std::vector<std::uint64_t> progress_;
  std::uint64_t round_ = 0;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> moves_;
};

}  // namespace rbb::par
