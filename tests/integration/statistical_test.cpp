// Deeper statistical property tests crossing modules: distributional
// identities that must hold between independent implementations, exact
// laws for small cases, and uniformity of the randomized queue policy.
// All tests use fixed seeds and tolerances wide enough to be flake-free.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <map>

#include "analysis/experiments.hpp"
#include "coupling/coupling.hpp"
#include "tetris/tetris.hpp"
#include "baselines/independent_walks.hpp"
#include "core/config.hpp"
#include "core/process.hpp"
#include "core/token_process.hpp"
#include "support/bounds.hpp"

namespace rbb {
namespace {

TEST(Statistical, RandomPolicyPopIsUniform) {
  // BallQueue kRandom must pick uniformly among the queued tokens: pop
  // one of 5 tokens many times and chi-square the frequencies.
  Rng rng(1);
  std::array<int, 5> counts{};
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) {
    BallQueue q;
    for (std::uint32_t t = 0; t < 5; ++t) q.push(t);
    ++counts[q.pop(QueuePolicy::kRandom, rng)];
  }
  const double expected = kDraws / 5.0;
  double chi2 = 0.0;
  for (const int c : counts) {
    chi2 += (c - expected) * (c - expected) / expected;
  }
  EXPECT_LT(chi2, 25.0);  // df = 4; p ~ 5e-5 at 25
}

TEST(Statistical, SingleRoundArrivalsAreBinomial) {
  // From one-per-bin, the arrivals into bin 0 in one round are
  // Binomial(n, 1/n) exactly (all n bins release one ball u.a.r.).
  constexpr std::uint32_t n = 64;
  constexpr int kTrials = 60000;
  Rng rng(2);
  std::vector<std::uint64_t> counts(n + 1, 0);
  for (int i = 0; i < kTrials; ++i) {
    RepeatedBallsProcess proc(LoadConfig(n, 1), rng.split());
    proc.step();
    // one-per-bin: every bin had load 1, so floor(Q0 - 1, 0) = 0 and
    // Q0 after the round equals the arrival count.
    ++counts[proc.loads()[0]];
  }
  // Compare P(X = 0), P(X = 1), P(X = 2) with the exact pmf.
  for (std::uint64_t k = 0; k <= 2; ++k) {
    const double expected = binomial_pmf(n, 1.0 / n, k);
    const double observed =
        static_cast<double>(counts[k]) / static_cast<double>(kTrials);
    EXPECT_NEAR(observed, expected, 0.01) << "k=" << k;
  }
}

TEST(Statistical, ExactTwoBinRoundDistribution) {
  // n = 2, start (1,1): after one round the configuration is (0,2), (1,1)
  // or (2,0) with probabilities 1/4, 1/2, 1/4 exactly.
  constexpr int kTrials = 100000;
  Rng rng(3);
  std::map<std::pair<std::uint32_t, std::uint32_t>, int> counts;
  for (int i = 0; i < kTrials; ++i) {
    RepeatedBallsProcess proc(LoadConfig{1, 1}, rng.split());
    proc.step();
    ++counts[{proc.loads()[0], proc.loads()[1]}];
  }
  EXPECT_NEAR((counts[{0, 2}] / static_cast<double>(kTrials)), 0.25, 0.01);
  EXPECT_NEAR((counts[{1, 1}] / static_cast<double>(kTrials)), 0.50, 0.01);
  EXPECT_NEAR((counts[{2, 0}] / static_cast<double>(kTrials)), 0.25, 0.01);
}

TEST(Statistical, IndependentWalksOccupancyIsExactlyOneShot) {
  // After any round, the independent-walks load vector on the clique is a
  // fresh n-ball occupancy: P(bin 0 empty) = (1 - 1/n)^n.
  constexpr std::uint32_t n = 32;
  constexpr int kTrials = 40000;
  Rng rng(4);
  int empty0 = 0;
  for (int i = 0; i < kTrials; ++i) {
    std::vector<std::uint32_t> start(n);
    for (std::uint32_t j = 0; j < n; ++j) start[j] = j;
    IndependentWalksProcess proc(n, std::move(start), nullptr, rng.split());
    proc.step();
    if (proc.loads()[0] == 0) ++empty0;
  }
  const double expected = std::pow(1.0 - 1.0 / n, n);
  EXPECT_NEAR(empty0 / static_cast<double>(kTrials), expected, 0.01);
}

TEST(Statistical, GraphEquilibriumEmptyFractionByDegree) {
  // On regular graphs the equilibrium empty fraction is close to the
  // clique's (~0.41 mean) -- degree shifts it only mildly.  Property
  // sweep over three regular topologies.
  constexpr std::uint32_t n = 256;
  Rng graph_rng(5);
  for (const std::string name : {"cycle", "torus", "hypercube"}) {
    const Graph g = make_named_graph(name, n, graph_rng);
    Rng rng(6);
    RepeatedBallsProcess proc(LoadConfig(n, 1), &g, rng);
    proc.run(500);  // settle
    double sum = 0.0;
    constexpr int kWindow = 1500;
    for (int t = 0; t < kWindow; ++t) {
      sum += static_cast<double>(proc.step().empty_bins);
    }
    const double mean_empty = sum / kWindow / n;
    EXPECT_GT(mean_empty, 0.30) << name;
    EXPECT_LT(mean_empty, 0.50) << name;
  }
}

TEST(Statistical, SerializeRoundTripRandomConfigs) {
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    const auto bins = static_cast<std::uint32_t>(1 + rng.below(64));
    const std::uint64_t balls = rng.below(200);
    const LoadConfig q =
        make_config(InitialConfig::kRandom, bins, balls, rng);
    EXPECT_EQ(parse_config(serialize_config(q)), q);
  }
}

TEST(Statistical, DelayMeanMatchesLoadIdentity) {
  // Little's-law-style identity: mean waiting time over releases equals
  // (mean queue length behind the server) ~ E[load | busy] - 1 in
  // equilibrium.  With empty fraction ~0.41, E[load | busy] ~ 1/0.59
  // ~ 1.7, predicting mean delay ~0.7 -- confirmed within 10%.
  DelayParams p;
  p.n = 512;
  p.trials = 2;
  const DelayResult r = run_delays(p);
  EXPECT_NEAR(r.mean_delay, 0.7, 0.07);
}

TEST(Statistical, TetrisEmptyFractionMatchesFixedPoint) {
  // Tetris equilibrium: departures = (1 - empty) n balls leave, 3n/4
  // arrive; mass balance at stationarity forces empty -> 1/4 exactly
  // (the throughput identity 1 - empty = 3/4).
  constexpr std::uint32_t n = 512;
  Rng rng(8);
  TetrisProcess proc(make_config(InitialConfig::kRandom, n, n, rng), rng);
  proc.run(2000);
  double sum = 0.0;
  constexpr int kWindow = 4000;
  for (int t = 0; t < kWindow; ++t) {
    sum += static_cast<double>(proc.step().empty_bins);
  }
  EXPECT_NEAR(sum / kWindow / n, 0.25, 0.02);
}

TEST(Statistical, RepeatedProcessEmptyFractionFixedPoint) {
  // The analogous identity for the original process: in equilibrium the
  // empty fraction e* solves a fixed-point equation; the measured value
  // is ~0.414 (stable across sizes; cf. E3).  Regression-test the value
  // so distributional changes to the kernel are caught.
  constexpr std::uint32_t n = 1024;
  Rng rng(9);
  RepeatedBallsProcess proc(LoadConfig(n, 1), rng);
  proc.run(2000);
  double sum = 0.0;
  constexpr int kWindow = 6000;
  for (int t = 0; t < kWindow; ++t) {
    sum += static_cast<double>(proc.step().empty_bins);
  }
  EXPECT_NEAR(sum / kWindow / n, 0.414, 0.01);
}

TEST(Statistical, CouplingSharedDestinationsAreUniform) {
  // The coupled processes' shared arrival draws must remain uniform:
  // after many coupled rounds, per-bin Tetris loads have no positional
  // bias (compare first-half vs second-half total mass).
  constexpr std::uint32_t n = 256;
  Rng rng(10);
  LoadConfig start = make_config(InitialConfig::kRandom, n, n, rng);
  if (empty_bins(start) < n / 4) {
    RepeatedBallsProcess warm(std::move(start), rng.split());
    warm.step();
    start = warm.loads();
  }
  CoupledProcesses coupled(start, rng.split());
  coupled.run(2000);
  std::uint64_t first_half = 0;
  std::uint64_t second_half = 0;
  for (std::uint32_t u = 0; u < n; ++u) {
    (u < n / 2 ? first_half : second_half) += coupled.tetris_loads()[u];
  }
  const double ratio = static_cast<double>(first_half) /
                       static_cast<double>(first_half + second_half);
  EXPECT_NEAR(ratio, 0.5, 0.08);
}

}  // namespace
}  // namespace rbb
