// Shared "--name=value" / "--name value" option splitting, used by both
// the `rbb` CLI (runner.cpp) and the back-compat bench mains
// (legacy.cpp) so the two surfaces cannot drift in syntax.
#pragma once

#include <string>
#include <vector>

namespace rbb::runner {

/// Splits the option token at args[*i], consuming args[*i + 1] (and
/// advancing *i) when the value is space-separated.  Bare options leave
/// *has_value false with an empty value (flag semantics).  Returns
/// false when args[*i] is not a `--`-prefixed option at all.
inline bool split_option(const std::vector<std::string>& args,
                         std::size_t* i, std::string* name,
                         std::string* value, bool* has_value) {
  const std::string& arg = args[*i];
  if (arg.size() < 3 || arg[0] != '-' || arg[1] != '-') return false;
  const std::size_t eq = arg.find('=');
  if (eq != std::string::npos) {
    *name = arg.substr(2, eq - 2);
    *value = arg.substr(eq + 1);
    *has_value = true;
    return true;
  }
  *name = arg.substr(2);
  if (*i + 1 < args.size() &&
      (args[*i + 1].empty() || args[*i + 1].rfind("--", 0) != 0)) {
    *value = args[++*i];
    *has_value = true;
  } else {
    value->clear();
    *has_value = false;
  }
  return true;
}

}  // namespace rbb::runner
