#include "par/sharded_process.hpp"

#include <algorithm>
#include <stdexcept>

#include "support/bounds.hpp"

namespace rbb::par {

ShardedRepeatedBallsProcess::ShardedRepeatedBallsProcess(
    LoadConfig initial, std::uint64_t seed, ShardedOptions options)
    : loads_(std::move(initial)),
      plan_(loads_.empty() ? 1 : static_cast<std::uint32_t>(loads_.size()),
            options.shard_size),
      rng_(seed),
      exec_(options.threads),
      balls_(total_balls(loads_)) {
  if (loads_.empty()) {
    throw std::invalid_argument(
        "ShardedRepeatedBallsProcess: empty configuration");
  }
  buffers_.resize(static_cast<std::size_t>(plan_.stripe_count()) *
                  plan_.shard_count());
  acc_.resize(plan_.stripe_count());
  recompute_stats();
}

RoundStats ShardedRepeatedBallsProcess::step() {
  const std::uint32_t n = bin_count();
  const std::uint32_t shard_count = plan_.shard_count();

  // Phase 1 (throw): departures + destination draws into stripe-owned
  // buffers.  The counter RNG keys every draw by (round, releasing bin),
  // so the round's randomness is independent of the schedule.
  exec_.for_stripes(plan_.stripe_count(), [&](std::uint32_t g) {
    StripeAcc& acc = acc_[g];
    acc.departures = 0;
    std::vector<std::uint32_t>* row =
        &buffers_[static_cast<std::size_t>(g) * shard_count];
    const std::uint32_t begin = plan_.shard_begin(plan_.stripe_begin_shard(g));
    const std::uint32_t end =
        plan_.stripe_end_shard(g) == shard_count
            ? n
            : plan_.shard_begin(plan_.stripe_end_shard(g));
    for (std::uint32_t u = begin; u < end; ++u) {
      std::uint32_t& load = loads_[u];
      if (load > 0) {
        --load;
        ++acc.departures;
        const std::uint32_t dest = rng_.index(round_, u, n);
        row[plan_.shard_of(dest)].push_back(dest);
      }
    }
  });

  // Phase 2 (commit): each stripe drains all buffers addressed to its
  // shards and rescans them for the round statistics.  The shard's
  // loads are cache-hot, so the random within-shard scatter is cheap.
  exec_.for_stripes(plan_.stripe_count(), [&](std::uint32_t g) {
    StripeAcc& acc = acc_[g];
    acc.max = 0;
    acc.zeros = 0;
    for (std::uint32_t s = plan_.stripe_begin_shard(g);
         s < plan_.stripe_end_shard(g); ++s) {
      for (std::uint32_t src = 0; src < plan_.stripe_count(); ++src) {
        std::vector<std::uint32_t>& buf =
            buffers_[static_cast<std::size_t>(src) * shard_count + s];
        for (const std::uint32_t dest : buf) ++loads_[dest];
        buf.clear();
      }
      for (std::uint32_t u = plan_.shard_begin(s); u < plan_.shard_end(s);
           ++u) {
        const std::uint32_t load = loads_[u];
        if (load == 0) {
          ++acc.zeros;
        } else if (load > acc.max) {
          acc.max = load;
        }
      }
    }
  });

  // Fixed-order reduction over stripes.
  std::uint32_t departures = 0;
  max_load_ = 0;
  empty_ = 0;
  for (const StripeAcc& acc : acc_) {
    departures += acc.departures;
    max_load_ = std::max(max_load_, acc.max);
    empty_ += acc.zeros;
  }
  ++round_;
  return RoundStats{max_load_, empty_, departures};
}

RoundStats ShardedRepeatedBallsProcess::run(std::uint64_t rounds) {
  RoundStats stats{max_load_, empty_, 0};
  for (std::uint64_t t = 0; t < rounds; ++t) stats = step();
  return stats;
}

bool ShardedRepeatedBallsProcess::is_legitimate(double beta) const {
  return static_cast<double>(max_load_) <= beta * log2n(bin_count());
}

void ShardedRepeatedBallsProcess::reassign(const LoadConfig& q) {
  validate_config(q, balls_);
  if (q.size() != loads_.size()) {
    throw std::invalid_argument("reassign: bin count mismatch");
  }
  loads_ = q;
  recompute_stats();
}

void ShardedRepeatedBallsProcess::recompute_stats() {
  max_load_ = rbb::max_load(loads_);
  empty_ = rbb::empty_bins(loads_);
}

void ShardedRepeatedBallsProcess::check_invariants() const {
  if (total_balls(loads_) != balls_) {
    throw std::logic_error("ShardedRepeatedBallsProcess: balls drifted");
  }
  if (rbb::max_load(loads_) != max_load_) {
    throw std::logic_error(
        "ShardedRepeatedBallsProcess: max load out of sync");
  }
  if (rbb::empty_bins(loads_) != empty_) {
    throw std::logic_error(
        "ShardedRepeatedBallsProcess: empty count out of sync");
  }
  for (const auto& buf : buffers_) {
    if (!buf.empty()) {
      throw std::logic_error(
          "ShardedRepeatedBallsProcess: scatter buffer not drained");
    }
  }
}

}  // namespace rbb::par
