// Sharded and counter-stream instantiations of the load-only kernel
// (DESIGN.md Sect. 5).
//
// Since the policy refactor the whole mega-n machinery lives in the
// process core (core/kernel/): this header only names the load-only
// instantiations of the (execution x RNG stream) policy matrix that the
// runner, benches and tests drive:
//
//   ShardedRepeatedBallsProcess    LoadOnly x CounterStream x Sharded
//                                  -- one round of one instance across
//                                  all cores, trajectories bit-identical
//                                  for every thread count and shard size;
//   SequentialCounterProcess       LoadOnly x CounterStream x Sequential
//                                  -- the plain single-threaded loop
//                                  making the SAME counter draws: the
//                                  parity oracle of tests/par/ and the
//                                  "what one thread does" perf floor.
//
// Equal (configuration, seed) pairs give equal trajectories across the
// two, for any ShardedOptions.
#pragma once

#include <cstdint>
#include <utility>

#include "core/config.hpp"
#include "core/kernel/ball_kernel.hpp"

namespace rbb::par {

/// Execution knobs of the sharded instantiations (re-exported from the
/// kernel layer; see kernel::ExecOptions for the threads rule).
using ShardedOptions = kernel::ExecOptions;
using kernel::kDefaultShardSize;
using kernel::kMaxStripes;
using kernel::ShardPlan;

/// Load-only repeated balls-into-bins on the complete graph K_n,
/// sharded across cores.
class ShardedRepeatedBallsProcess
    : public kernel::BallProcessCore<kernel::LoadOnly<kernel::CounterStream>,
                                     kernel::ShardedExecution> {
 public:
  /// Starts from an explicit configuration.  `seed` keys the
  /// counter-based RNG; equal (configuration, seed) pairs give equal
  /// trajectories for any `options`.
  explicit ShardedRepeatedBallsProcess(LoadConfig initial, std::uint64_t seed,
                                       ShardedOptions options = {})
      : BallProcessCore(std::move(initial),
                        kernel::LoadOnly<kernel::CounterStream>(
                            kernel::CounterStream(seed)),
                        options) {}
};

/// Single-threaded load-only kernel under the counter-based RNG; the
/// parity oracle for ShardedRepeatedBallsProcess.
class SequentialCounterProcess
    : public kernel::BallProcessCore<kernel::LoadOnly<kernel::CounterStream>,
                                     kernel::SequentialExecution> {
 public:
  explicit SequentialCounterProcess(LoadConfig initial, std::uint64_t seed)
      : BallProcessCore(std::move(initial),
                        kernel::LoadOnly<kernel::CounterStream>(
                            kernel::CounterStream(seed))) {}
};

}  // namespace rbb::par
