#include "baselines/independent_walks.hpp"

#include <algorithm>
#include <stdexcept>

namespace rbb {

IndependentWalksProcess::IndependentWalksProcess(
    std::uint32_t bins, std::vector<std::uint32_t> start_bin,
    const Graph* graph, Rng rng)
    : bins_(bins), graph_(graph), rng_(rng), ball_bin_(std::move(start_bin)) {
  if (bins_ == 0) throw std::invalid_argument("IndependentWalks: bins == 0");
  if (ball_bin_.empty()) {
    throw std::invalid_argument("IndependentWalks: no balls");
  }
  if (graph_ != nullptr && graph_->node_count() != bins_) {
    throw std::invalid_argument("IndependentWalks: graph size != bins");
  }
  loads_.assign(bins_, 0);
  for (const std::uint32_t b : ball_bin_) {
    if (b >= bins_) {
      throw std::invalid_argument("IndependentWalks: start bin out of range");
    }
    ++loads_[b];
  }
}

void IndependentWalksProcess::step() {
  ++round_;
  for (auto& bin : ball_bin_) {
    --loads_[bin];
    bin = graph_ == nullptr ? rng_.index(bins_)
                            : graph_->sample_neighbor(bin, rng_);
    ++loads_[bin];
  }
}

void IndependentWalksProcess::run(std::uint64_t rounds) {
  for (std::uint64_t t = 0; t < rounds; ++t) step();
}

std::uint32_t IndependentWalksProcess::max_load() const {
  return *std::max_element(loads_.begin(), loads_.end());
}

std::uint32_t IndependentWalksProcess::empty_bins() const {
  return static_cast<std::uint32_t>(
      std::count(loads_.begin(), loads_.end(), 0u));
}

void IndependentWalksProcess::reassign(
    const std::vector<std::uint32_t>& new_bin) {
  if (new_bin.size() != ball_bin_.size()) {
    throw std::invalid_argument("reassign: ball count mismatch");
  }
  for (const std::uint32_t b : new_bin) {
    if (b >= bins_) {
      throw std::invalid_argument("reassign: bin out of range");
    }
  }
  ball_bin_ = new_bin;
  loads_.assign(bins_, 0);
  for (const std::uint32_t b : ball_bin_) ++loads_[b];
}

void IndependentWalksProcess::check_invariants() const {
  std::vector<std::uint32_t> expected(bins_, 0);
  for (const std::uint32_t b : ball_bin_) {
    if (b >= bins_) {
      throw std::logic_error("IndependentWalks: ball position out of range");
    }
    ++expected[b];
  }
  if (expected != loads_) {
    throw std::logic_error("IndependentWalks: loads out of sync");
  }
}

std::optional<std::uint64_t> single_walk_cover_time(std::uint32_t bins,
                                                    const Graph* graph,
                                                    std::uint64_t cap,
                                                    Rng& rng) {
  if (bins == 0) {
    throw std::invalid_argument("single_walk_cover_time: bins == 0");
  }
  if (graph != nullptr && graph->node_count() != bins) {
    throw std::invalid_argument("single_walk_cover_time: graph size != bins");
  }
  std::vector<char> visited(bins, 0);
  std::uint32_t position = 0;
  visited[0] = 1;
  std::uint32_t seen = 1;
  if (seen == bins) return 0;
  for (std::uint64_t t = 1; t <= cap; ++t) {
    position = graph == nullptr ? rng.index(bins)
                                : graph->sample_neighbor(position, rng);
    if (!visited[position]) {
      visited[position] = 1;
      if (++seen == bins) return t;
    }
  }
  return std::nullopt;
}

}  // namespace rbb
