// Tests for independent parallel walks and the single-walker baseline.
#include "baselines/independent_walks.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "support/bounds.hpp"
#include "support/stats.hpp"

namespace rbb {
namespace {

std::vector<std::uint32_t> spread(std::uint32_t n) {
  std::vector<std::uint32_t> pos(n);
  std::iota(pos.begin(), pos.end(), 0u);
  return pos;
}

TEST(IndependentWalks, RejectsBadConstruction) {
  EXPECT_THROW(IndependentWalksProcess(0, {0}, nullptr, Rng(1)),
               std::invalid_argument);
  EXPECT_THROW(IndependentWalksProcess(4, {}, nullptr, Rng(1)),
               std::invalid_argument);
  EXPECT_THROW(IndependentWalksProcess(4, {7}, nullptr, Rng(1)),
               std::invalid_argument);
}

TEST(IndependentWalks, ConservesBalls) {
  IndependentWalksProcess proc(32, spread(32), nullptr, Rng(2));
  for (int t = 0; t < 100; ++t) {
    proc.step();
    const auto& loads = proc.loads();
    ASSERT_EQ(std::accumulate(loads.begin(), loads.end(), 0u), 32u);
  }
}

TEST(IndependentWalks, EveryBallMovesEveryRound) {
  // Unlike the constrained process, all m balls relocate each round:
  // after one round on the clique the loads are a fresh occupancy.
  IndependentWalksProcess proc(64, std::vector<std::uint32_t>(64, 0),
                               nullptr, Rng(3));
  EXPECT_EQ(proc.loads()[0], 64u);
  proc.step();
  // All 64 balls left bin 0 (P[ball stays] = 1/64 each; some may return,
  // but the pile is gone).
  EXPECT_LT(proc.loads()[0], 16u);
}

TEST(IndependentWalks, EquilibriumEmptyFractionIsOneOverE) {
  // Fresh n-ball occupancy each round: empty fraction ~ (1-1/n)^n ~ 1/e,
  // notably above the constrained process's equilibrium.
  constexpr std::uint32_t n = 1024;
  IndependentWalksProcess proc(n, spread(n), nullptr, Rng(4));
  double sum = 0.0;
  constexpr int kRounds = 300;
  for (int t = 0; t < kRounds; ++t) {
    proc.step();
    sum += static_cast<double>(proc.empty_bins()) / n;
  }
  EXPECT_NEAR(sum / kRounds, std::exp(-1.0), 0.02);
}

TEST(IndependentWalks, GraphModeStaysOnEdges) {
  const Graph g = make_cycle(16);
  IndependentWalksProcess proc(16, spread(16), &g, Rng(5));
  // On a cycle, positions change by +-1 mod 16 per round; just check
  // conservation and support.
  proc.run(50);
  const auto& loads = proc.loads();
  EXPECT_EQ(std::accumulate(loads.begin(), loads.end(), 0u), 16u);
}

TEST(SingleWalk, CoverTimeNearCouponCollector) {
  // Clique: E[cover] = n H_n; n = 256 -> ~1567.
  constexpr std::uint32_t n = 256;
  Rng rng(6);
  OnlineMoments cover;
  for (int i = 0; i < 60; ++i) {
    const auto c = single_walk_cover_time(n, nullptr, 100000, rng);
    ASSERT_TRUE(c.has_value());
    cover.add(static_cast<double>(*c));
  }
  EXPECT_NEAR(cover.mean(), coupon_collector_mean(n), 0.25 * coupon_collector_mean(n));
}

TEST(SingleWalk, RespectsCap) {
  Rng rng(7);
  EXPECT_FALSE(single_walk_cover_time(1024, nullptr, 10, rng).has_value());
}

TEST(SingleWalk, CycleCoverIsQuadratic) {
  // Cycle cover time is Theta(n^2), far above the clique's n log n.
  constexpr std::uint32_t n = 64;
  const Graph g = make_cycle(n);
  Rng rng(8);
  OnlineMoments cover;
  for (int i = 0; i < 30; ++i) {
    const auto c = single_walk_cover_time(n, &g, 10 * n * n, rng);
    ASSERT_TRUE(c.has_value());
    cover.add(static_cast<double>(*c));
  }
  // E[cover] = n(n-1)/2 ~ 2016 for the cycle.
  EXPECT_NEAR(cover.mean(), n * (n - 1) / 2.0, 0.3 * n * n);
  EXPECT_GT(cover.mean(), 2.0 * coupon_collector_mean(n));
}

TEST(SingleWalk, LollipopIsTheWorstCase) {
  // The lollipop's single-walker cover time is Theta(n^3) -- much worse
  // than both the clique (n log n) and the cycle (n^2).
  constexpr std::uint32_t n = 32;
  const Graph lollipop = make_lollipop(n);
  Rng rng(10);
  OnlineMoments lolli;
  OnlineMoments clique;
  for (int i = 0; i < 20; ++i) {
    const auto c1 =
        single_walk_cover_time(n, &lollipop, 100ull * n * n * n, rng);
    ASSERT_TRUE(c1.has_value());
    lolli.add(static_cast<double>(*c1));
    const auto c2 = single_walk_cover_time(n, nullptr, 1u << 22, rng);
    ASSERT_TRUE(c2.has_value());
    clique.add(static_cast<double>(*c2));
  }
  EXPECT_GT(lolli.mean(), 5.0 * clique.mean());
}

TEST(SingleWalk, SingleBinCoversImmediately) {
  Rng rng(9);
  const auto c = single_walk_cover_time(1, nullptr, 10, rng);
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(*c, 0u);  // start position already covers the only bin
}

}  // namespace
}  // namespace rbb
