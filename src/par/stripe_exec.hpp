// Stripe-task dispatch shared by the sharded processes: pool selection
// (ShardedOptions::threads) plus the per-phase parallel-for.  One place
// owns the rule, so the load-only and token kernels cannot diverge.
#pragma once

#include <cstdint>
#include <memory>

#include "support/thread_pool.hpp"

namespace rbb::par {

/// Runs phase bodies over [0, stripe_count) per the `threads` knob:
///   0  -- the process-wide ThreadPool::global(),
///   1  -- strictly inline on the calling thread (no pool),
///   k  -- a private pool sized k-1 workers: the submitting thread
///         drains its own batches (ThreadPool::run_batch), so k-1
///         workers + the submitter = exactly k runnable threads.  This
///         keeps the `threads` label of perf tables honest and the
///         k = hardware row from oversubscribing by one.
/// Note a private pool only helps at the TOP of the nesting hierarchy:
/// inside another pool's task every submission runs inline
/// (thread_pool.hpp nesting rule), so processes driven under
/// for_each_trial should use threads <= 1 and let the trial sweep own
/// the cores.
class StripeExecutor {
 public:
  explicit StripeExecutor(unsigned threads) {
    if (threads == 0) {
      pool_ = &ThreadPool::global();
    } else if (threads > 1) {
      owned_pool_ = std::make_unique<ThreadPool>(threads - 1);
      pool_ = owned_pool_.get();
    }
  }

  template <typename Fn>
  void for_stripes(std::uint32_t stripe_count, Fn&& fn) {
    if (pool_ == nullptr || stripe_count == 1) {
      for (std::uint32_t g = 0; g < stripe_count; ++g) fn(g);
      return;
    }
    pool_->for_each(stripe_count, [&fn](std::uint64_t g) {
      fn(static_cast<std::uint32_t>(g));
    });
  }

 private:
  ThreadPool* pool_ = nullptr;  // nullptr = inline execution
  std::unique_ptr<ThreadPool> owned_pool_;
};

}  // namespace rbb::par
