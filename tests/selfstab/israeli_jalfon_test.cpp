// Tests for the synchronous Israeli-Jalfon token-management process.
#include "selfstab/israeli_jalfon.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "graph/graph.hpp"

namespace rbb {
namespace {

TEST(IsraeliJalfon, ConstructorValidatesInput) {
  Rng rng(1);
  // Size mismatch between graph and n.
  const Graph cycle = make_cycle(8);
  EXPECT_THROW(
      IsraeliJalfonProcess(&cycle, 9, TokenPlacement::kEveryNode, rng),
      std::invalid_argument);
  // No tokens at all.
  EXPECT_THROW(
      IsraeliJalfonProcess(nullptr, 4, std::vector<std::uint8_t>(4, 0),
                           Rng(2)),
      std::invalid_argument);
  // Wrong flag-vector length.
  EXPECT_THROW(
      IsraeliJalfonProcess(nullptr, 4, std::vector<std::uint8_t>(3, 1),
                           Rng(2)),
      std::invalid_argument);
}

TEST(IsraeliJalfon, PlacementsHaveExpectedCounts) {
  Rng rng(3);
  const auto every = make_token_placement(TokenPlacement::kEveryNode, 10, rng);
  std::uint32_t count = 0;
  for (const auto t : every) count += t;
  EXPECT_EQ(count, 10u);

  const auto two = make_token_placement(TokenPlacement::kTwoNodes, 10, rng);
  count = 0;
  for (const auto t : two) count += t;
  EXPECT_EQ(count, 2u);
  EXPECT_EQ(two[0], 1);
  EXPECT_EQ(two[5], 1);

  // Random-half always leaves at least one token.
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    Rng r(seed);
    const auto half = make_token_placement(TokenPlacement::kRandomHalf, 6, r);
    count = 0;
    for (const auto t : half) count += t;
    EXPECT_GE(count, 1u);
  }
}

TEST(IsraeliJalfon, TokenCountNeverIncreases) {
  Rng rng(7);
  IsraeliJalfonProcess proc(nullptr, 64, TokenPlacement::kEveryNode, rng);
  std::uint32_t prev = proc.token_count();
  EXPECT_EQ(prev, 64u);
  for (int t = 0; t < 200; ++t) {
    const std::uint32_t merges = proc.step();
    EXPECT_EQ(proc.token_count() + merges, prev);
    EXPECT_LE(proc.token_count(), prev);
    EXPECT_GE(proc.token_count(), 1u);
    prev = proc.token_count();
    proc.check_invariants();
  }
}

TEST(IsraeliJalfon, CoalescesOnTheCompleteGraph) {
  Rng rng(11);
  IsraeliJalfonProcess proc(nullptr, 32, TokenPlacement::kEveryNode, rng);
  const std::uint64_t rounds = proc.run_until_single(100000);
  EXPECT_TRUE(proc.is_legitimate());
  EXPECT_EQ(proc.token_count(), 1u);
  EXPECT_GT(rounds, 0u);
  EXPECT_LT(rounds, 100000u);
}

TEST(IsraeliJalfon, CoalescesOnCycleAndTorus) {
  const Graph cycle = make_cycle(16);
  IsraeliJalfonProcess on_cycle(&cycle, 16, TokenPlacement::kEveryNode,
                                Rng(13));
  on_cycle.run_until_single(1000000);
  EXPECT_TRUE(on_cycle.is_legitimate());

  const Graph torus = make_torus(4, 4);
  IsraeliJalfonProcess on_torus(&torus, 16, TokenPlacement::kEveryNode,
                                Rng(17));
  on_torus.run_until_single(1000000);
  EXPECT_TRUE(on_torus.is_legitimate());
}

TEST(IsraeliJalfon, SingleTokenIsAbsorbing) {
  Rng rng(19);
  std::vector<std::uint8_t> tokens(8, 0);
  tokens[3] = 1;
  IsraeliJalfonProcess proc(nullptr, 8, std::move(tokens), rng);
  EXPECT_TRUE(proc.is_legitimate());
  for (int t = 0; t < 100; ++t) {
    proc.step();
    EXPECT_EQ(proc.token_count(), 1u);  // closure: stays legitimate
  }
}

TEST(IsraeliJalfon, RunUntilSingleRespectsCap) {
  Rng rng(23);
  const Graph cycle = make_cycle(64);
  IsraeliJalfonProcess proc(&cycle, 64, TokenPlacement::kEveryNode, rng);
  const std::uint64_t rounds = proc.run_until_single(3);
  EXPECT_LE(rounds, 3u);
  // 64 tokens cannot coalesce in 3 rounds on a cycle: at most half the
  // tokens disappear per round even in the luckiest outcome.
  EXPECT_GT(proc.token_count(), 1u);
}

TEST(IsraeliJalfon, SingleTokenCoversTheGraph) {
  Rng rng(29);
  std::vector<std::uint8_t> tokens(16, 0);
  tokens[0] = 1;
  IsraeliJalfonProcess proc(nullptr, 16, std::move(tokens), rng);
  const std::uint64_t cover = proc.run_single_token_cover(100000);
  EXPECT_LT(cover, 100000u);
  // Coupon collector on K_16: needs at least n - 1 moves.
  EXPECT_GE(cover, 15u);
  // The surviving token flag is kept consistent.
  std::uint32_t count = 0;
  for (const auto t : proc.tokens()) count += t;
  EXPECT_EQ(count, 1u);
}

TEST(IsraeliJalfon, CoverThrowsWithManyTokens) {
  Rng rng(31);
  IsraeliJalfonProcess proc(nullptr, 8, TokenPlacement::kEveryNode, rng);
  EXPECT_THROW((void)proc.run_single_token_cover(10), std::logic_error);
}

TEST(IsraeliJalfon, DeterministicGivenSeed) {
  auto run = [] {
    IsraeliJalfonProcess proc(nullptr, 32, TokenPlacement::kEveryNode,
                              Rng(101));
    return proc.run_until_single(100000);
  };
  EXPECT_EQ(run(), run());
}

TEST(IsraeliJalfon, TwoTokenMeetingOnCompleteGraphIsFast) {
  // Two tokens on K_n meet with probability ~1/n per round, so the mean
  // meeting time is ~n; over many trials the average must be well below
  // n^2 and above n/8 (loose sanity bands, not a statistical test).
  const std::uint32_t n = 32;
  double total = 0.0;
  const int trials = 200;
  for (int trial = 0; trial < trials; ++trial) {
    IsraeliJalfonProcess proc(nullptr, n, TokenPlacement::kTwoNodes,
                              Rng(300, static_cast<std::uint64_t>(trial)));
    total += static_cast<double>(proc.run_until_single(1000000));
  }
  const double mean = total / trials;
  EXPECT_GT(mean, n / 8.0);
  EXPECT_LT(mean, n * n);
}

TEST(IsraeliJalfon, InjectedTokensAreCountedAndRecovered) {
  Rng rng(53);
  std::vector<std::uint8_t> tokens(32, 0);
  tokens[0] = 1;
  IsraeliJalfonProcess proc(nullptr, 32, std::move(tokens), rng);
  ASSERT_TRUE(proc.is_legitimate());
  const std::uint32_t added = proc.inject_tokens(10);
  EXPECT_GE(added, 1u);
  EXPECT_LE(added, 10u);
  EXPECT_EQ(proc.token_count(), 1u + added);
  EXPECT_FALSE(proc.is_legitimate());
  proc.check_invariants();
  // Recovery: the system re-coalesces on its own.
  proc.run_until_single(1000000);
  EXPECT_TRUE(proc.is_legitimate());
}

TEST(IsraeliJalfon, InjectingOntoOccupiedNodesAbsorbs) {
  // With every node occupied no injection can add anything.
  Rng rng(59);
  IsraeliJalfonProcess proc(nullptr, 8, TokenPlacement::kEveryNode, rng);
  EXPECT_EQ(proc.inject_tokens(20), 0u);
  EXPECT_EQ(proc.token_count(), 8u);
  proc.check_invariants();
}

TEST(IsraeliJalfon, StarGraphCoalesces) {
  const Graph star = make_star(9);
  IsraeliJalfonProcess proc(&star, 9, TokenPlacement::kEveryNode, Rng(37));
  proc.run_until_single(100000);
  EXPECT_TRUE(proc.is_legitimate());
}

TEST(IsraeliJalfon, LazinessOutOfRangeThrows) {
  EXPECT_THROW(IsraeliJalfonProcess(nullptr, 4, TokenPlacement::kEveryNode,
                                    Rng(1), 1.0),
               std::invalid_argument);
  EXPECT_THROW(IsraeliJalfonProcess(nullptr, 4, TokenPlacement::kEveryNode,
                                    Rng(1), -0.1),
               std::invalid_argument);
}

/// The parity obstruction that motivates the lazy default: with laziness
/// 0 on an even cycle, two tokens on opposite parity classes switch sides
/// every round and can *never* merge.
TEST(IsraeliJalfon, PureSynchronousWalkStuckOnBipartiteParity) {
  const Graph cycle = make_cycle(8);
  std::vector<std::uint8_t> tokens(8, 0);
  tokens[0] = 1;  // even side
  tokens[3] = 1;  // odd side
  IsraeliJalfonProcess proc(&cycle, 8, std::move(tokens), Rng(41),
                            /*laziness=*/0.0);
  for (int t = 0; t < 2000; ++t) {
    proc.step();
    ASSERT_EQ(proc.token_count(), 2u) << "round " << t;
  }
  // The lazy walk breaks the parity trap from the same start.
  std::vector<std::uint8_t> tokens2(8, 0);
  tokens2[0] = 1;
  tokens2[3] = 1;
  IsraeliJalfonProcess lazy(&cycle, 8, std::move(tokens2), Rng(41), 0.5);
  lazy.run_until_single(200000);
  EXPECT_TRUE(lazy.is_legitimate());
}

/// On the (non-bipartite) complete graph the pure synchronous dynamics
/// also coalesce; laziness is not needed there.
TEST(IsraeliJalfon, PureSynchronousCoalescesOnClique) {
  IsraeliJalfonProcess proc(nullptr, 32, TokenPlacement::kEveryNode, Rng(43),
                            /*laziness=*/0.0);
  proc.run_until_single(1000000);
  EXPECT_TRUE(proc.is_legitimate());
}

}  // namespace
}  // namespace rbb
