#include "support/meminfo.hpp"

#include <cstdio>
#include <cstring>

namespace rbb {

PeakRss parse_peak_rss_status(const char* path) noexcept {
  std::FILE* f = std::fopen(path, "r");
  if (f == nullptr) return {};
  PeakRss result;
  char line[256];
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, "VmHWM:", 6) == 0) {
      unsigned long long kb = 0;
      if (std::sscanf(line + 6, "%llu", &kb) == 1) {
        result.available = true;
        result.bytes = static_cast<std::uint64_t>(kb) * 1024;
      }
      break;
    }
  }
  std::fclose(f);
  return result;
}

PeakRss peak_rss() noexcept {
  return parse_peak_rss_status("/proc/self/status");
}

}  // namespace rbb
