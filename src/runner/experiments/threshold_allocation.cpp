// Extra -- 1-2-3-Toolkit threshold allocation on the repeated process:
// each relaunched ball probes up to `probes` uniform bins and settles
// in the first whose load is at or below an accept threshold (else the
// last probed).  An adaptive rule the Variant axis of the policy core
// absorbs without touching the execution policies: one probe is the
// paper's process, and a small probe budget against a near-mean
// threshold already buys most of Greedy[d]'s flattening.
#include <cmath>

#include "analysis/experiments.hpp"
#include "runner/registry.hpp"
#include "support/bounds.hpp"

namespace rbb::runner {

void register_threshold_allocation(Registry& registry) {
  Experiment e;
  e.name = "threshold_allocation";
  e.title = "threshold allocation: probe-until-below-threshold relaunches";
  e.description =
      "Per n and probe budget in {1, 2, 3}, the window max load of the "
      "repeated process where each relaunched ball settles in the first "
      "of up to `probes` uniform candidates with load <= threshold "
      "(default: mean load + 1).  probes = 1 is the paper's process; "
      "more probes interpolate toward the d-choices log log n regime "
      "while querying load values only, never comparing bins "
      "(the 1-2-3 threshold-allocation toolkit rule).  Backend-capable "
      "(threshold family): --backend=sharded runs the batch-snapshot "
      "convention of the src/par/ counter-RNG kernel (probes read the "
      "post-departure configuration).";
  e.family = ProcessFamily::kThreshold;
  e.params = {
      {"threshold", ParamSpec::Type::kU64, "0",
       "accept bound on the probed load (0 = mean load + 1)"},
      {"window-factor", ParamSpec::Type::kU64, "0",
       "window = factor * n rounds (0 = scale default)"},
  };
  e.run = [](const RunContext& ctx) {
    const std::uint32_t trials = ctx.trials_or(2, 4, 8);
    const std::uint64_t wf =
        ctx.params.u64("window-factor") != 0
            ? ctx.params.u64("window-factor")
            : by_scale<std::uint64_t>(ctx.scale, 5, 15, 40);

    ResultSet rs;
    Table& table = rs.add_table(
        "threshold_allocation",
        "threshold allocation: probe-until-below-threshold relaunches",
        {"n", "probes", "threshold", "window max (mean)",
         "window max (worst)", "max / log2 n", "log2 log2 n"});
    for (const std::uint32_t n : default_n_sweep(ctx.scale)) {
      for (const std::uint32_t probes : {1u, 2u, 3u}) {
        StabilityParams p;
        p.n = n;
        p.rounds = wf * n;
        p.trials = trials;
        p.seed = ctx.seed();
        p.process = StabilityProcess::kThreshold;
        p.choices = probes;
        p.threshold = static_cast<std::uint32_t>(ctx.params.u64("threshold"));
        if (ctx.sharded()) p.backend = Backend::kSharded;
        p.plan = ctx.trial_plan(trials);
        const StabilityResult r = run_stability(p);
        table.row()
            .cell(std::uint64_t{n})
            .cell(std::uint64_t{probes})
            .cell(p.threshold != 0 ? std::uint64_t{p.threshold}
                                   : std::uint64_t{2})
            .cell(r.window_max.mean(), 2)
            .cell(std::uint64_t{r.overall_max})
            .cell(r.window_max.mean() / log2n(n), 3)
            .cell(std::log2(log2n(n)), 2);
      }
    }
    return rs;
  };
  registry.add(std::move(e));
}

}  // namespace rbb::runner
