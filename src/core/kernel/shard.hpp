// Bin partitioning for the sharded execution policy (DESIGN.md Sect. 5).
//
// A ShardPlan cuts the bin range [0, n) into cache-aligned shards --
// contiguous, equally sized blocks whose load sub-vector fits in L1/L2
// -- and groups the shards into a fixed number of contiguous *stripes*,
// the unit of work handed to pool tasks.  Two properties matter:
//
//  * shard boundaries are multiples of 16 bins (16 x 4-byte loads = one
//    64-byte cache line), so two workers never write the same line when
//    each owns whole shards;
//  * the stripe count is fixed by the plan, NOT by the thread count.
//    Work is distributed stripe-by-stripe via the pool's dynamic
//    scheduler, so any number of threads drains the same stripe list --
//    and because every per-stripe output is either commutative (load
//    sums) or canonically ordered (arrivals sorted by releasing bin),
//    the result is bit-identical for every thread count and shard size.
#pragma once

#include <algorithm>
#include <cstdint>
#include <stdexcept>

#include "support/types.hpp"

namespace rbb::kernel {

/// Default bins per shard: 16384 x 4 bytes = 64 KiB, comfortably inside
/// a per-core L2 while amortizing per-shard buffer bookkeeping.
inline constexpr std::uint32_t kDefaultShardSize = 16384;

/// Upper bound on stripes (pool tasks per phase).  Small enough that
/// per-stripe accumulators stay cheap, large enough to load-balance any
/// realistic worker count with dynamic scheduling.
inline constexpr std::uint32_t kMaxStripes = 32;

/// The partition of [0, n) into shards and stripes.
class ShardPlan {
 public:
  /// `shard_size` = 0 picks the default; other values are rounded up to
  /// a multiple of 16 bins (cache-line alignment; see header comment).
  explicit ShardPlan(std::uint32_t n, std::uint32_t shard_size = 0) : n_(n) {
    if (n == 0) throw std::invalid_argument("ShardPlan: n == 0");
    // Round up in 64-bit and clamp to the largest 16-aligned uint32:
    // near UINT32_MAX the 32-bit round-up would wrap to 0 and the
    // shard-count division would SIGFPE (CLI-reachable via
    // --shard-size).  Any shard size >= n means one shard anyway.
    const std::uint64_t requested =
        shard_size == 0 ? kDefaultShardSize : shard_size;
    shard_size_ = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(((requested + 15u) / 16u) * 16u,
                                0xFFFFFFF0u));
    shard_count_ = (n_ - 1) / shard_size_ + 1;
    stripe_count_ = std::min(shard_count_, kMaxStripes);
  }

  [[nodiscard]] std::uint32_t n() const noexcept { return n_; }
  [[nodiscard]] std::uint32_t shard_size() const noexcept {
    return shard_size_;
  }
  [[nodiscard]] std::uint32_t shard_count() const noexcept {
    return shard_count_;
  }
  [[nodiscard]] std::uint32_t stripe_count() const noexcept {
    return stripe_count_;
  }

  [[nodiscard]] std::uint32_t shard_of(bin_index_t bin) const noexcept {
    return bin / shard_size_;
  }
  // Boundary arithmetic widens to 64 bits: near n = 2^32 the products
  // shard * shard_size and (shard + 1) * shard_size exceed uint32 and
  // would silently wrap (--scale=mega headroom; see support/types.hpp).
  [[nodiscard]] bin_index_t shard_begin(std::uint32_t shard) const noexcept {
    return static_cast<bin_index_t>(
        std::min<std::uint64_t>(n_, std::uint64_t{shard} * shard_size_));
  }
  [[nodiscard]] bin_index_t shard_end(std::uint32_t shard) const noexcept {
    return static_cast<bin_index_t>(std::min<std::uint64_t>(
        n_, (std::uint64_t{shard} + 1) * shard_size_));
  }

  /// Stripe `g` owns shards [stripe_begin_shard(g), stripe_end_shard(g)),
  /// in increasing order; stripes tile [0, shard_count) contiguously.
  [[nodiscard]] std::uint32_t stripe_begin_shard(
      std::uint32_t stripe) const noexcept {
    return static_cast<std::uint32_t>(
        (static_cast<std::uint64_t>(stripe) * shard_count_) / stripe_count_);
  }
  [[nodiscard]] std::uint32_t stripe_end_shard(
      std::uint32_t stripe) const noexcept {
    return static_cast<std::uint32_t>(
        (static_cast<std::uint64_t>(stripe + 1) * shard_count_) /
        stripe_count_);
  }

  /// Bin range owned by stripe `g`: [stripe_begin_bin, stripe_end_bin).
  [[nodiscard]] bin_index_t stripe_begin_bin(std::uint32_t g) const noexcept {
    return shard_begin(stripe_begin_shard(g));
  }
  [[nodiscard]] bin_index_t stripe_end_bin(std::uint32_t g) const noexcept {
    return stripe_end_shard(g) == shard_count_
               ? n_
               : shard_begin(stripe_end_shard(g));
  }

 private:
  std::uint32_t n_;
  std::uint32_t shard_size_;
  std::uint32_t shard_count_;
  std::uint32_t stripe_count_;
};

}  // namespace rbb::kernel
