// Tests for load configurations and the legitimacy predicate.
#include "core/config.hpp"

#include <gtest/gtest.h>

#include <string>

namespace rbb {
namespace {

TEST(MakeConfig, OnePerBin) {
  Rng rng(1);
  const LoadConfig q = make_config(InitialConfig::kOnePerBin, 8, 8, rng);
  for (const auto load : q) EXPECT_EQ(load, 1u);
}

TEST(MakeConfig, OnePerBinWithMoreBalls) {
  Rng rng(1);
  const LoadConfig q = make_config(InitialConfig::kOnePerBin, 4, 10, rng);
  EXPECT_EQ(q[0], 3u);
  EXPECT_EQ(q[1], 3u);
  EXPECT_EQ(q[2], 2u);
  EXPECT_EQ(q[3], 2u);
}

TEST(MakeConfig, AllInOne) {
  Rng rng(2);
  const LoadConfig q = make_config(InitialConfig::kAllInOne, 8, 8, rng);
  EXPECT_EQ(q[0], 8u);
  EXPECT_EQ(max_load(q), 8u);
  EXPECT_EQ(empty_bins(q), 7u);
}

TEST(MakeConfig, RandomConservesBalls) {
  Rng rng(3);
  const LoadConfig q = make_config(InitialConfig::kRandom, 64, 64, rng);
  EXPECT_EQ(total_balls(q), 64u);
}

TEST(MakeConfig, HalfLoaded) {
  Rng rng(4);
  const LoadConfig q = make_config(InitialConfig::kHalfLoaded, 8, 8, rng);
  EXPECT_EQ(total_balls(q), 8u);
  for (std::uint32_t u = 4; u < 8; ++u) EXPECT_EQ(q[u], 0u);
  EXPECT_EQ(empty_bins(q), 4u);
}

TEST(MakeConfig, GeometricProfile) {
  Rng rng(5);
  const LoadConfig q = make_config(InitialConfig::kGeometric, 8, 64, rng);
  EXPECT_EQ(total_balls(q), 64u);
  EXPECT_EQ(q[0], 32u);
  EXPECT_EQ(q[1], 16u);
  EXPECT_GE(q[0], q[1]);
}

TEST(MakeConfig, AllKindsConserveBalls) {
  Rng rng(6);
  for (const auto kind :
       {InitialConfig::kOnePerBin, InitialConfig::kAllInOne,
        InitialConfig::kRandom, InitialConfig::kHalfLoaded,
        InitialConfig::kGeometric}) {
    const LoadConfig q = make_config(kind, 33, 77, rng);
    EXPECT_EQ(total_balls(q), 77u) << to_string(kind);
    EXPECT_EQ(q.size(), 33u);
  }
}

TEST(MakeConfig, RejectsZeroBins) {
  Rng rng(7);
  EXPECT_THROW((void)make_config(InitialConfig::kRandom, 0, 5, rng),
               std::invalid_argument);
}

TEST(ConfigStats, Basics) {
  const LoadConfig q{3, 0, 1, 0, 0};
  EXPECT_EQ(total_balls(q), 4u);
  EXPECT_EQ(max_load(q), 3u);
  EXPECT_EQ(empty_bins(q), 3u);
}

TEST(Legitimacy, ThresholdScalesWithLogN) {
  // n = 1024: log2 n = 10, beta = 4 -> threshold 40.
  LoadConfig q(1024, 0);
  q[0] = 40;
  EXPECT_TRUE(is_legitimate(q, 4.0));
  q[0] = 41;
  EXPECT_FALSE(is_legitimate(q, 4.0));
  EXPECT_TRUE(is_legitimate(q, 5.0));
}

TEST(Legitimacy, EmptyConfigThrows) {
  EXPECT_THROW((void)is_legitimate(LoadConfig{}), std::invalid_argument);
}

TEST(ValidateConfig, DetectsMismatch) {
  validate_config(LoadConfig{1, 2, 3}, 6);  // ok
  EXPECT_THROW(validate_config(LoadConfig{1, 2, 3}, 7),
               std::invalid_argument);
  EXPECT_THROW(validate_config(LoadConfig{}, 0), std::invalid_argument);
}

TEST(OccupancyHistogram, CountsBinsByLoad) {
  const LoadConfig q{3, 0, 1, 0, 3};
  const Histogram h = occupancy_histogram(q);
  EXPECT_EQ(h.total(), 5u);      // one entry per bin
  EXPECT_EQ(h.count_at(0), 2u);  // two empty bins
  EXPECT_EQ(h.count_at(1), 1u);
  EXPECT_EQ(h.count_at(3), 2u);
  EXPECT_EQ(h.max_value(), 3u);
}

TEST(SerializeConfig, RoundTrips) {
  for (const LoadConfig& q :
       {LoadConfig{1, 2, 3}, LoadConfig{0}, LoadConfig{5, 0, 0, 0},
        LoadConfig(100, 7)}) {
    EXPECT_EQ(parse_config(serialize_config(q)), q);
  }
}

TEST(SerializeConfig, Format) {
  EXPECT_EQ(serialize_config(LoadConfig{4, 0, 2}), "3:4,0,2");
  EXPECT_EQ(serialize_config(LoadConfig{9}), "1:9");
}

TEST(ParseConfig, RejectsMalformedInput) {
  EXPECT_THROW((void)parse_config(""), std::invalid_argument);
  EXPECT_THROW((void)parse_config("3;1,2,3"), std::invalid_argument);
  EXPECT_THROW((void)parse_config("abc:1"), std::invalid_argument);
  EXPECT_THROW((void)parse_config("2:1"), std::invalid_argument);   // short
  EXPECT_THROW((void)parse_config("1:1,2"), std::invalid_argument); // long
  EXPECT_THROW((void)parse_config("2:1,x"), std::invalid_argument);
  EXPECT_THROW((void)parse_config("0:"), std::invalid_argument);
  EXPECT_THROW((void)parse_config("2:1,"), std::invalid_argument);
}

TEST(InitialConfigNames, RoundTrip) {
  for (const auto kind :
       {InitialConfig::kOnePerBin, InitialConfig::kAllInOne,
        InitialConfig::kRandom, InitialConfig::kHalfLoaded,
        InitialConfig::kGeometric}) {
    EXPECT_EQ(initial_config_from_string(to_string(kind)), kind);
  }
  EXPECT_THROW((void)initial_config_from_string("bogus"),
               std::invalid_argument);
}

}  // namespace
}  // namespace rbb
