// Snapshot round-trip property suite (DESIGN.md Sect. 7): for every
// kernel family, a snapshot taken mid-run and restored -- into the
// sequential counter core or into the sharded core at any worker count
// and shard size -- continues BIT-IDENTICALLY: the restored process's
// snapshot at the target round equals the uninterrupted oracle's, byte
// for byte.  This is the strongest possible resume guarantee; summary
// statistics (max load, empty bins) follow a fortiori.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "core/config.hpp"
#include "core/mixed_config.hpp"
#include "core/token_process.hpp"
#include "par/sharded_mixed.hpp"
#include "par/sharded_process.hpp"
#include "par/sharded_token_process.hpp"
#include "par/sharded_variants.hpp"
#include "support/rng.hpp"
#include "support/serial.hpp"

namespace rbb {
namespace {

constexpr std::uint32_t kBins = 300;
constexpr std::uint64_t kSeed = 1234;
constexpr std::uint64_t kSplitRound = 17;
constexpr std::uint64_t kTargetRound = 48;

template <typename Proc>
std::string snapshot_of(const Proc& proc) {
  serial::ByteWriter w;
  proc.snapshot(w);
  return w.take();
}

/// The property: run a sequential oracle to the target; snapshot a
/// twin at the split round; restore that snapshot into fresh processes
/// (sequential, and sharded at 1/2/8 workers x shard sizes
/// 64/256/1024); continue each to the target and demand byte equality
/// with the oracle's snapshot.
template <typename MakeSeq, typename MakeSharded>
void ExpectRestoreBitIdentical(MakeSeq make_seq, MakeSharded make_sharded) {
  auto oracle = make_seq();
  oracle.run(kTargetRound);
  const std::string want = snapshot_of(oracle);

  auto twin = make_seq();
  twin.run(kSplitRound);
  const std::string mid = snapshot_of(twin);

  {
    auto p = make_seq();
    serial::ByteReader r(mid);
    p.restore(r);
    ASSERT_TRUE(r.done());
    ASSERT_EQ(p.round(), kSplitRound);
    p.run(kTargetRound - kSplitRound);
    EXPECT_EQ(snapshot_of(p), want) << "sequential restore diverged";
  }
  for (const unsigned threads : {1u, 2u, 8u}) {
    for (const std::uint32_t shard : {64u, 256u, 1024u}) {
      auto p = make_sharded(
          par::ShardedOptions{.threads = threads, .shard_size = shard});
      serial::ByteReader r(mid);
      p.restore(r);
      ASSERT_TRUE(r.done());
      ASSERT_EQ(p.round(), kSplitRound);
      p.run(kTargetRound - kSplitRound);
      EXPECT_EQ(snapshot_of(p), want)
          << "sharded restore diverged at threads=" << threads
          << " shard_size=" << shard;
    }
  }
}

LoadConfig start_config() {
  Rng rng(kSeed);
  return make_config(InitialConfig::kAllInOne, kBins, kBins, rng);
}

TEST(CkptRoundtrip, LoadBitIdenticalAcrossBackends) {
  ExpectRestoreBitIdentical(
      [] { return par::SequentialCounterProcess(start_config(), kSeed); },
      [](par::ShardedOptions o) {
        return par::ShardedRepeatedBallsProcess(start_config(), kSeed, o);
      });
}

TEST(CkptRoundtrip, TetrisBitIdenticalAcrossBackends) {
  ExpectRestoreBitIdentical(
      [] {
        return par::SequentialCounterTetrisProcess(start_config(), kSeed);
      },
      [](par::ShardedOptions o) {
        return par::ShardedTetrisProcess(start_config(), kSeed, 0, o);
      });
}

TEST(CkptRoundtrip, DChoicesBitIdenticalAcrossBackends) {
  ExpectRestoreBitIdentical(
      [] {
        return par::SequentialCounterDChoicesProcess(start_config(), 2, kSeed);
      },
      [](par::ShardedOptions o) {
        return par::ShardedDChoicesProcess(start_config(), 2, kSeed, o);
      });
}

TEST(CkptRoundtrip, LeakyBitIdenticalAcrossBackends) {
  ExpectRestoreBitIdentical(
      [] {
        return par::SequentialCounterLeakyBinsProcess(start_config(), 0.5,
                                                      kSeed);
      },
      [](par::ShardedOptions o) {
        return par::ShardedLeakyBinsProcess(start_config(), 0.5, kSeed, o);
      });
}

TEST(CkptRoundtrip, TokenBitIdenticalAcrossBackendsAllPolicies) {
  for (const QueuePolicy policy :
       {QueuePolicy::kFifo, QueuePolicy::kLifo, QueuePolicy::kRandom}) {
    SCOPED_TRACE(to_string(policy));
    kernel::TokenOptions options;
    options.policy = policy;
    ExpectRestoreBitIdentical(
        [options] {
          return par::SequentialCounterTokenProcess(
              kBins, identity_placement(kBins), kSeed, options);
        },
        [options](par::ShardedOptions o) {
          return par::ShardedTokenProcess(kBins, identity_placement(kBins),
                                          kSeed, o, options);
        });
  }
}

TEST(CkptRoundtrip, TokenVisitTrackingSurvivesRestore) {
  kernel::TokenOptions options;
  options.track_visits = true;
  ExpectRestoreBitIdentical(
      [options] {
        return par::SequentialCounterTokenProcess(
            kBins, identity_placement(kBins), kSeed, options);
      },
      [options](par::ShardedOptions o) {
        return par::ShardedTokenProcess(kBins, identity_placement(kBins),
                                        kSeed, o, options);
      });
}

TEST(CkptRoundtrip, MixedBitIdenticalAcrossBackends) {
  for (const char* bins : {"uniform", "two-speed", "stalled-tenth", "capped"}) {
    SCOPED_TRACE(bins);
    const MixedSpec spec = make_mixed_spec(kBins, 2.0, "bimodal", bins);
    ExpectRestoreBitIdentical(
        [&spec] { return par::SequentialCounterMixedProcess(spec, kSeed); },
        [&spec](par::ShardedOptions o) {
          return par::ShardedMixedProcess(spec, kSeed, o);
        });
  }
}

// Restore must reject a payload whose shape disagrees with the
// constructed process (a CRC-valid checkpoint of a different run).
TEST(CkptRoundtrip, RestoreRejectsMismatchedShape) {
  par::SequentialCounterProcess small(
      [] {
        Rng rng(kSeed);
        return make_config(InitialConfig::kOnePerBin, 64, 64, rng);
      }(),
      kSeed);
  small.run(5);
  const std::string mid = snapshot_of(small);

  par::SequentialCounterProcess big(start_config(), kSeed);
  serial::ByteReader r(mid);
  EXPECT_THROW(big.restore(r), std::exception);
}

// Pipelined continuation: multi-round sharded runs take the
// double-buffered pipelined path when enabled; a restored process must
// feed it identically.  Named CkptPipelined.* so the TSan CI job can
// select it alongside the other pipelined suites.
TEST(CkptPipelined, RestoredShardedRunMatchesOracle) {
  par::ShardedRepeatedBallsProcess oracle(
      start_config(), kSeed,
      par::ShardedOptions{.threads = 4, .shard_size = 64});
  oracle.run(200);
  const std::string want = snapshot_of(oracle);

  par::ShardedRepeatedBallsProcess twin(
      start_config(), kSeed,
      par::ShardedOptions{.threads = 4, .shard_size = 64});
  twin.run(73);
  const std::string mid = snapshot_of(twin);

  par::ShardedRepeatedBallsProcess resumed(
      start_config(), kSeed,
      par::ShardedOptions{.threads = 4, .shard_size = 64});
  serial::ByteReader r(mid);
  resumed.restore(r);
  ASSERT_TRUE(r.done());
  resumed.run(200 - 73);  // long enough to engage the pipelined path
  EXPECT_EQ(snapshot_of(resumed), want);
}

TEST(CkptPipelined, SnapshotAfterPipelinedRunRestoresCleanly) {
  par::ShardedMixedProcess proc(
      make_mixed_spec(kBins, 2.0, "zipf", "capped"), kSeed,
      par::ShardedOptions{.threads = 4, .shard_size = 64});
  proc.run(120);
  const std::string mid = snapshot_of(proc);

  par::SequentialCounterMixedProcess resumed(
      make_mixed_spec(kBins, 2.0, "zipf", "capped"), kSeed);
  serial::ByteReader r(mid);
  resumed.restore(r);
  ASSERT_TRUE(r.done());
  resumed.run(80);
  ASSERT_NO_THROW(resumed.check_invariants());

  proc.run(80);
  EXPECT_EQ(snapshot_of(proc), snapshot_of(resumed));
}

}  // namespace
}  // namespace rbb
