// E18 -- Sect. 4 / Sect. 1.2: under FIFO, every ball performs
// Omega(t / log n) steps of its random walk within any t = poly(n)
// rounds (no token starves).
#include "analysis/experiments.hpp"
#include "runner/registry.hpp"
#include "support/bounds.hpp"

namespace rbb::runner {

void register_progress(Registry& registry) {
  Experiment e;
  e.name = "progress";
  e.claim = "E18";
  e.title = "every FIFO token advances Omega(t / log n) (Sect. 4)";
  e.description =
      "Per n and queue policy, the minimum per-token progress after T "
      "rounds, the normalization min_progress * log2(n) / T (predicted "
      "bounded below by a constant; measured ~log-factor above it "
      "because the typical delay is O(1), not O(log n)), and the mean "
      "per-round progress (~ the non-empty bin fraction ~ 0.63).  LIFO "
      "and RANDOM are included: Theorem 1 is policy-oblivious for loads, "
      "but per-token progress under LIFO has no such guarantee -- the "
      "measured minimum visibly degrades.  Backend-capable (token "
      "family): --backend=sharded drives the src/par/ token core, which "
      "carries all three queue policies (random uses schedule-free "
      "pop-select draws), so the full policy sweep runs on either "
      "backend.";
  e.family = ProcessFamily::kToken;
  e.run = [](const RunContext& ctx) {
    const std::uint32_t trials = ctx.trials_or(2, 4, 10);
    const std::uint64_t wf = by_scale<std::uint64_t>(ctx.scale, 8, 16, 64);
    const std::vector<QueuePolicy> policies = {
        QueuePolicy::kFifo, QueuePolicy::kRandom, QueuePolicy::kLifo};

    ResultSet rs;
    Table& table = rs.add_table(
        "E18_progress",
        "every FIFO token advances Omega(t / log n) (Sect. 4)",
        {"n", "policy", "T (rounds)", "min progress (mean)",
         "min prog * log2 n / T", "mean progress / T"});
    for (const std::uint32_t n : default_n_sweep(ctx.scale)) {
      for (const QueuePolicy policy : policies) {
        ProgressParams p;
        p.n = n;
        p.rounds = wf * n;
        p.trials = trials;
        p.seed = ctx.seed();
        p.policy = policy;
        if (ctx.sharded()) p.backend = Backend::kSharded;
        const ProgressResult r = run_progress(p);
        table.row()
            .cell(std::uint64_t{n})
            .cell(std::string(to_string(policy)))
            .cell(p.rounds)
            .cell(r.min_progress.mean(), 1)
            .cell(r.min_progress_normalized.mean(), 3)
            .cell(r.mean_progress.mean(), 3);
      }
    }
    return rs;
  };
  registry.add(std::move(e));
}

}  // namespace rbb::runner
