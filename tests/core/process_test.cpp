// Tests for the load-only repeated balls-into-bins kernel: the load-update
// identity, ball conservation, incremental-stat consistency, determinism,
// and the paper's qualitative predictions at test scale.
#include "core/process.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "support/bounds.hpp"

namespace rbb {
namespace {

TEST(Process, RejectsEmptyConfig) {
  EXPECT_THROW(RepeatedBallsProcess(LoadConfig{}, Rng(1)),
               std::invalid_argument);
}

TEST(Process, InitialStatsMatchConfig) {
  const LoadConfig q{3, 0, 1, 0};
  const RepeatedBallsProcess proc(q, Rng(1));
  EXPECT_EQ(proc.bin_count(), 4u);
  EXPECT_EQ(proc.ball_count(), 4u);
  EXPECT_EQ(proc.max_load(), 3u);
  EXPECT_EQ(proc.empty_bins(), 2u);
  EXPECT_EQ(proc.round(), 0u);
}

TEST(Process, ConservesBalls) {
  Rng rng(2);
  LoadConfig q = make_config(InitialConfig::kRandom, 64, 64, rng);
  RepeatedBallsProcess proc(std::move(q), rng);
  for (int t = 0; t < 200; ++t) {
    proc.step();
    ASSERT_EQ(total_balls(proc.loads()), 64u);
  }
  proc.check_invariants();
}

TEST(Process, IncrementalStatsStayExact) {
  Rng rng(3);
  LoadConfig q = make_config(InitialConfig::kAllInOne, 32, 32, rng);
  RepeatedBallsProcess proc(std::move(q), rng);
  for (int t = 0; t < 300; ++t) {
    const RoundStats s = proc.step();
    ASSERT_EQ(s.max_load, max_load(proc.loads()));
    ASSERT_EQ(s.empty_bins, empty_bins(proc.loads()));
    proc.check_invariants();
  }
}

TEST(Process, DeterministicForSeed) {
  auto run = [] {
    Rng rng(77);
    LoadConfig q = make_config(InitialConfig::kRandom, 32, 32, rng);
    RepeatedBallsProcess proc(std::move(q), rng);
    proc.run(100);
    return proc.loads();
  };
  EXPECT_EQ(run(), run());
}

TEST(Process, DeparturesEqualNonEmptyBins) {
  Rng rng(4);
  LoadConfig q{2, 0, 1, 0, 3};  // 3 non-empty bins
  RepeatedBallsProcess proc(std::move(q), rng);
  const RoundStats s = proc.step();
  EXPECT_EQ(s.departures, 3u);
}

TEST(Process, SingleBallKeepsMoving) {
  // One ball in n bins: every round the ball is re-thrown; max load 1.
  Rng rng(5);
  LoadConfig q(16, 0);
  q[3] = 1;
  RepeatedBallsProcess proc(std::move(q), rng);
  for (int t = 0; t < 100; ++t) {
    const RoundStats s = proc.step();
    ASSERT_EQ(s.max_load, 1u);
    ASSERT_EQ(s.empty_bins, 15u);
    ASSERT_EQ(s.departures, 1u);
  }
}

TEST(Process, AllInOneDrainsLinearly) {
  // From all-in-one, the big bin loses exactly one ball per round, so
  // after k rounds its load is n - k (arrivals back into it are rare).
  Rng rng(6);
  constexpr std::uint32_t n = 256;
  LoadConfig q = make_config(InitialConfig::kAllInOne, n, n, rng);
  RepeatedBallsProcess proc(std::move(q), rng);
  proc.step();
  // After one round: bin 0 holds n - 1 balls (+ maybe the re-thrown one).
  EXPECT_GE(proc.loads()[0], n - 2);
  EXPECT_LE(proc.loads()[0], n);
}

TEST(Process, LoadUpdateIdentityHolds) {
  // Q^{t+1}_v >= max(Q^t_v - 1, 0) and the excess equals arrivals.
  Rng rng(7);
  LoadConfig q = make_config(InitialConfig::kRandom, 32, 32, rng);
  RepeatedBallsProcess proc(q, rng);
  for (int t = 0; t < 50; ++t) {
    const LoadConfig before = proc.loads();
    proc.step();
    const LoadConfig& after = proc.loads();
    std::uint64_t arrivals = 0;
    std::uint64_t departures = 0;
    for (std::uint32_t v = 0; v < before.size(); ++v) {
      const std::uint32_t floor_v = before[v] > 0 ? before[v] - 1 : 0;
      ASSERT_GE(after[v], floor_v) << "round " << t;
      arrivals += after[v] - floor_v;
      departures += before[v] > 0 ? 1u : 0u;
    }
    ASSERT_EQ(arrivals, departures) << "round " << t;
  }
}

TEST(Process, ReassignReplacesConfiguration) {
  Rng rng(8);
  LoadConfig q = make_config(InitialConfig::kOnePerBin, 16, 16, rng);
  RepeatedBallsProcess proc(std::move(q), rng);
  proc.run(10);
  LoadConfig adversarial(16, 0);
  adversarial[5] = 16;
  proc.reassign(adversarial);
  EXPECT_EQ(proc.max_load(), 16u);
  EXPECT_EQ(proc.empty_bins(), 15u);
  proc.check_invariants();
}

TEST(Process, ReassignValidatesBallCount) {
  Rng rng(9);
  RepeatedBallsProcess proc(LoadConfig{1, 1}, rng);
  EXPECT_THROW(proc.reassign(LoadConfig{3, 0}), std::invalid_argument);
  EXPECT_THROW(proc.reassign(LoadConfig{1, 1, 0}), std::invalid_argument);
}

TEST(Process, LegitimacyTracksBeta) {
  Rng rng(10);
  LoadConfig q(1024, 0);
  q[0] = 1024;
  RepeatedBallsProcess proc(std::move(q), rng);
  EXPECT_FALSE(proc.is_legitimate(4.0));
  // beta large enough to cover n: legitimate trivially.
  EXPECT_TRUE(proc.is_legitimate(1024.0));
}

TEST(ProcessOnGraph, RequiresMatchingSize) {
  Rng rng(11);
  const Graph g = make_cycle(8);
  EXPECT_THROW(RepeatedBallsProcess(LoadConfig(4, 1), &g, Rng(1)),
               std::invalid_argument);
}

TEST(ProcessOnGraph, BallsStayOnGraphAndConserve) {
  Rng rng(12);
  const Graph g = make_cycle(16);
  LoadConfig q = make_config(InitialConfig::kOnePerBin, 16, 16, rng);
  RepeatedBallsProcess proc(std::move(q), &g, rng);
  for (int t = 0; t < 200; ++t) {
    proc.step();
    ASSERT_EQ(total_balls(proc.loads()), 16u);
  }
  proc.check_invariants();
}

TEST(ProcessOnGraph, PathEndpointsOnlyFeedInward) {
  // On a 2-path {0-1}, a ball leaving bin 0 can only arrive at bin 1.
  Rng rng(13);
  const Graph g = make_path(2);
  LoadConfig q{2, 0};
  RepeatedBallsProcess proc(std::move(q), &g, rng);
  const RoundStats s = proc.step();
  // Bin 0 released one ball; it must be in bin 1 now.
  EXPECT_EQ(proc.loads()[0], 1u);
  EXPECT_EQ(proc.loads()[1], 1u);
  EXPECT_EQ(s.departures, 1u);
}

TEST(ProcessOnGraph, StarConcentratesOnHub) {
  // On a star all leaf balls go to the hub every round.
  Rng rng(14);
  const Graph g = make_star(9);
  LoadConfig q(9, 1);
  RepeatedBallsProcess proc(std::move(q), &g, rng);
  proc.step();
  // 8 leaves sent their ball to the hub; the hub's ball went to a leaf.
  EXPECT_EQ(proc.loads()[0], 8u);
}

// Property sweep: for several n and seeds, a window of the process from a
// legitimate start stays well below n (the paper's O(log n) at test
// scale) and never loses balls.
class ProcessSweep
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, int>> {};

TEST_P(ProcessSweep, WindowStaysModestAndConserves) {
  const auto [n, seed] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed));
  LoadConfig q = make_config(InitialConfig::kOnePerBin, n, n, rng);
  RepeatedBallsProcess proc(std::move(q), rng);
  std::uint32_t window_max = 0;
  for (std::uint32_t t = 0; t < 20 * n; ++t) {
    window_max = std::max(window_max, proc.step().max_load);
  }
  EXPECT_EQ(total_balls(proc.loads()), n);
  // Theorem 1 at this scale: max load stays O(log n); 6 log2 n is a
  // generous empirical envelope (measured constants are ~1.5-2.5).
  EXPECT_LE(window_max, 6.0 * log2n(n)) << "n=" << n << " seed=" << seed;
  proc.check_invariants();
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, ProcessSweep,
    ::testing::Combine(::testing::Values(64u, 256u, 1024u),
                       ::testing::Values(1, 2, 3)));

}  // namespace
}  // namespace rbb
