// The Lemma-3 coupling between the original process and Tetris.
//
// Both processes run on one joint probability space.  Each round, with
// W = the set of non-empty bins of the *original* process and
// k = floor(3n/4) the Tetris arrival budget:
//
//   case (i)  |W| <= k:  every ball released by the original process is
//             matched with one Tetris arrival sent to the *same* uniform
//             destination; the remaining k - |W| Tetris arrivals are
//             independent u.a.r. draws.
//   case (ii) |W| >  k:  the processes run independently this round.
//
// Under case (i) every round, Tetris *dominates*: every bin's Tetris load
// is >= its original load (proved inductively; verified here per round).
// Lemma 2 says case (ii) never fires within any polynomial window w.h.p.,
// which experiment E4 confirms by counting.
#pragma once

#include <cstdint>

#include "core/config.hpp"
#include "support/rng.hpp"

namespace rbb {

/// End-of-round observables of the coupled pair.
struct CoupledRoundStats {
  std::uint32_t original_max = 0;
  std::uint32_t tetris_max = 0;
  bool dominated = false;  // tetris load >= original load in every bin
  bool case_two = false;   // this round ran the processes independently
};

/// Jointly evolves the original repeated balls-into-bins process and the
/// Tetris process per the Lemma-3 construction (complete graph).
class CoupledProcesses {
 public:
  /// Both processes start from `initial`.  Lemma 3 assumes the start has
  /// at least n/4 empty bins; the caller typically runs one round of the
  /// original process first (see Theorem 1's proof) -- the driver in
  /// analysis/experiments.hpp does exactly that.
  CoupledProcesses(LoadConfig initial, Rng rng);

  CoupledRoundStats step();
  CoupledRoundStats run(std::uint64_t rounds);

  [[nodiscard]] std::uint32_t bin_count() const noexcept {
    return static_cast<std::uint32_t>(original_.size());
  }
  [[nodiscard]] std::uint64_t round() const noexcept { return round_; }
  [[nodiscard]] const LoadConfig& original_loads() const noexcept {
    return original_;
  }
  [[nodiscard]] const LoadConfig& tetris_loads() const noexcept {
    return tetris_;
  }

  /// Highest original-process load observed in rounds 1..now (M_T).
  [[nodiscard]] std::uint32_t original_running_max() const noexcept {
    return original_running_max_;
  }
  /// Highest Tetris load observed in rounds 1..now (M-hat_T).
  [[nodiscard]] std::uint32_t tetris_running_max() const noexcept {
    return tetris_running_max_;
  }
  /// Rounds in which some bin violated domination.
  [[nodiscard]] std::uint64_t violation_rounds() const noexcept {
    return violation_rounds_;
  }
  /// Rounds that ran under case (ii).
  [[nodiscard]] std::uint64_t case_two_rounds() const noexcept {
    return case_two_rounds_;
  }
  /// First round at which domination failed (0 = never).
  [[nodiscard]] std::uint64_t first_violation_round() const noexcept {
    return first_violation_round_;
  }

 private:
  LoadConfig original_;
  LoadConfig tetris_;
  Rng rng_;
  std::uint64_t arrivals_;  // floor(3n/4)
  std::uint64_t round_ = 0;
  std::uint32_t original_running_max_ = 0;
  std::uint32_t tetris_running_max_ = 0;
  std::uint64_t violation_rounds_ = 0;
  std::uint64_t case_two_rounds_ = 0;
  std::uint64_t first_violation_round_ = 0;
};

}  // namespace rbb
