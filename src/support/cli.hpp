// Tiny command-line option parser shared by the examples and the
// experiment benches.  Supports `--name=value` and `--name value` forms,
// boolean flags, and prints a generated usage text.  Deliberately minimal:
// no subcommands, no positional arguments.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace rbb {

/// Declarative option set: register options with defaults, then parse().
class Cli {
 public:
  explicit Cli(std::string program_description);

  /// Registers an option; `help` appears in usage output.
  void add_u64(const std::string& name, std::uint64_t default_value,
               const std::string& help);
  void add_double(const std::string& name, double default_value,
                  const std::string& help);
  void add_string(const std::string& name, std::string default_value,
                  const std::string& help);
  void add_flag(const std::string& name, const std::string& help);

  /// Parses argv.  Returns false (after printing usage) on --help or on a
  /// malformed/unknown option; callers should exit(0) / exit(2) then.
  [[nodiscard]] bool parse(int argc, const char* const* argv);

  [[nodiscard]] std::uint64_t u64(const std::string& name) const;
  [[nodiscard]] double f64(const std::string& name) const;
  [[nodiscard]] const std::string& str(const std::string& name) const;
  [[nodiscard]] bool flag(const std::string& name) const;

  [[nodiscard]] std::string usage(const std::string& argv0) const;

 private:
  enum class Kind { kU64, kDouble, kString, kFlag };
  struct Option {
    Kind kind;
    std::string help;
    std::string value;  // canonical textual value
  };
  Option& find(const std::string& name, Kind kind);
  const Option& find(const std::string& name, Kind kind) const;

  std::string description_;
  std::map<std::string, Option> options_;
  std::vector<std::string> order_;
};

}  // namespace rbb
