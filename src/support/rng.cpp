#include "support/rng.hpp"

#include <cmath>

namespace rbb {

double Rng::exponential() noexcept {
  // -log(1 - U) with U in [0,1): argument is in (0,1], result finite.
  return -std::log1p(-uniform());
}

}  // namespace rbb
