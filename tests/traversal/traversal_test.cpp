// Tests for the multi-token traversal protocol (Sect. 4) including the
// adversarial variant (Sect. 4.1).
#include "traversal/traversal.hpp"

#include <gtest/gtest.h>

#include "support/bounds.hpp"

namespace rbb {
namespace {

TEST(TokenPlacement, FamiliesCoverExpectedShapes) {
  Rng rng(1);
  const auto one = make_token_placement(InitialConfig::kOnePerBin, 8, 8, rng);
  for (std::uint32_t i = 0; i < 8; ++i) EXPECT_EQ(one[i], i);

  const auto all = make_token_placement(InitialConfig::kAllInOne, 8, 8, rng);
  for (const auto p : all) EXPECT_EQ(p, 0u);

  const auto half = make_token_placement(InitialConfig::kHalfLoaded, 8, 8, rng);
  for (const auto p : half) EXPECT_LT(p, 4u);

  const auto geo = make_token_placement(InitialConfig::kGeometric, 8, 8, rng);
  EXPECT_EQ(geo.size(), 8u);
  EXPECT_EQ(std::count(geo.begin(), geo.end(), 0u), 4);

  const auto rnd = make_token_placement(InitialConfig::kRandom, 8, 8, rng);
  for (const auto p : rnd) EXPECT_LT(p, 8u);
}

TEST(Traversal, SmallCliqueCovers) {
  TraversalParams params;
  params.n = 16;
  const TraversalResult r = run_traversal(params, 42);
  ASSERT_TRUE(r.cover_time.has_value());
  EXPECT_GT(*r.cover_time, 0u);
  EXPECT_LE(r.first_token_covered, r.last_token_covered);
  EXPECT_EQ(*r.cover_time, r.last_token_covered);
  EXPECT_GE(r.min_progress, 1u);
  EXPECT_GE(r.max_load_seen, 1u);
}

TEST(Traversal, DeterministicForSeed) {
  TraversalParams params;
  params.n = 32;
  const TraversalResult a = run_traversal(params, 7);
  const TraversalResult b = run_traversal(params, 7);
  ASSERT_TRUE(a.cover_time.has_value());
  ASSERT_TRUE(b.cover_time.has_value());
  EXPECT_EQ(*a.cover_time, *b.cover_time);
  EXPECT_EQ(a.min_progress, b.min_progress);
}

TEST(Traversal, CapReported) {
  TraversalParams params;
  params.n = 64;
  params.max_rounds = 3;  // far too few to cover
  const TraversalResult r = run_traversal(params, 1);
  EXPECT_FALSE(r.cover_time.has_value());
  EXPECT_EQ(r.rounds_run, 3u);
}

TEST(Traversal, CoverTimeScalesLikeNLog2N) {
  // Corollary 1 at test scale: cover/(n log2^2 n) lands in a band around
  // a modest constant (measured ~0.2-0.9 for n in the hundreds).
  TraversalParams params;
  params.n = 256;
  double sum = 0.0;
  constexpr int kTrials = 5;
  for (int i = 0; i < kTrials; ++i) {
    const TraversalResult r =
        run_traversal(params, static_cast<std::uint64_t>(100 + i));
    ASSERT_TRUE(r.cover_time.has_value());
    sum += static_cast<double>(*r.cover_time);
  }
  const double normalized = sum / kTrials / parallel_cover_scale(params.n);
  EXPECT_GT(normalized, 0.05);
  EXPECT_LT(normalized, 3.0);
}

TEST(Traversal, AdversarialFaultsStillCover) {
  // Faults every 8n rounds (gamma > 6 as Sect. 4.1 requires): traversal
  // must still complete, with bounded inflation.
  TraversalParams clean;
  clean.n = 128;
  const TraversalResult base = run_traversal(clean, 11);
  ASSERT_TRUE(base.cover_time.has_value());

  TraversalParams faulty = clean;
  faulty.fault_period = 8ull * faulty.n;
  faulty.fault_strategy = FaultStrategy::kAllToOne;
  const TraversalResult r = run_traversal(faulty, 11);
  ASSERT_TRUE(r.cover_time.has_value());
  // Constant-factor slowdown: generous 10x envelope at this scale.
  EXPECT_LT(static_cast<double>(*r.cover_time),
            10.0 * static_cast<double>(*base.cover_time) +
                10.0 * static_cast<double>(faulty.n));
}

TEST(Traversal, AllPoliciesCover) {
  for (const auto policy :
       {QueuePolicy::kFifo, QueuePolicy::kLifo, QueuePolicy::kRandom}) {
    TraversalParams params;
    params.n = 32;
    params.policy = policy;
    const TraversalResult r = run_traversal(params, 3);
    EXPECT_TRUE(r.cover_time.has_value()) << to_string(policy);
  }
}

TEST(Traversal, WorksOnGraphs) {
  Rng rng(5);
  const Graph g = make_hypercube(5);  // 32 nodes
  TraversalParams params;
  params.n = 32;
  params.graph = &g;
  params.max_rounds = 500000;
  const TraversalResult r = run_traversal(params, 9);
  ASSERT_TRUE(r.cover_time.has_value());
  EXPECT_GT(*r.cover_time, 32u);
}

TEST(Traversal, AdversarialPlacementStillCovers) {
  TraversalParams params;
  params.n = 64;
  params.placement = InitialConfig::kAllInOne;
  const TraversalResult r = run_traversal(params, 21);
  ASSERT_TRUE(r.cover_time.has_value());
  // The pile takes ~n rounds to drain before walks mix.
  EXPECT_GE(*r.cover_time, params.n / 2);
}

TEST(Traversal, RejectsTinyN) {
  TraversalParams params;
  params.n = 1;
  EXPECT_THROW((void)run_traversal(params, 1), std::invalid_argument);
}

}  // namespace
}  // namespace rbb
