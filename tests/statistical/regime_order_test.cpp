// Statistical oracle: the max-load regimes are ordered in the ball
// ratio -- more balls never lower the window maximum (E22, the Los &
// Sauerwald regime table).  Fixed seeds, generous windows: at n = 128
// over T = 8 n rounds the regimes sit far apart (c = 8 carries a mean
// load of 8 before any fluctuation), so the ordering is robust, not a
// knife-edge.
#include <gtest/gtest.h>

#include <cstdint>

#include "analysis/experiments.hpp"

namespace rbb {
namespace {

double window_max_at(double ratio, Backend backend, std::uint64_t seed) {
  StabilityParams p;
  p.n = 128;
  p.balls = static_cast<std::uint64_t>(ratio * p.n);
  p.rounds = 8 * p.n;
  p.trials = 2;
  p.seed = seed;
  p.start = InitialConfig::kOnePerBin;
  p.backend = backend;
  return run_stability(p).window_max.mean();
}

TEST(RegimeOrder, WindowMaxIsMonotoneInBallRatioSeq) {
  for (const std::uint64_t seed : {1ull, 7ull, 1234ull}) {
    const double c1 = window_max_at(1.0, Backend::kSeq, seed);
    const double c2 = window_max_at(2.0, Backend::kSeq, seed);
    const double c8 = window_max_at(8.0, Backend::kSeq, seed);
    EXPECT_GE(c2, c1) << "seed " << seed;
    EXPECT_GE(c8, c2) << "seed " << seed;
  }
}

TEST(RegimeOrder, WindowMaxIsMonotoneInBallRatioSharded) {
  for (const std::uint64_t seed : {1ull, 7ull}) {
    const double c1 = window_max_at(1.0, Backend::kSharded, seed);
    const double c2 = window_max_at(2.0, Backend::kSharded, seed);
    const double c8 = window_max_at(8.0, Backend::kSharded, seed);
    EXPECT_GE(c2, c1) << "seed " << seed;
    EXPECT_GE(c8, c2) << "seed " << seed;
  }
}

TEST(RegimeOrder, MixedEngineReproducesTheOrdering) {
  // The same ordering through the mixed-regime driver (unit weights,
  // uniform bins reduce it to the plain process with m = c n).
  const auto window_max = [](double ratio) {
    MixedParams p;
    p.n = 128;
    p.ball_ratio = ratio;
    p.rounds = 4 * p.n;
    p.trials = 2;
    p.seed = 99;
    return run_mixed(p).window_max.mean();
  };
  const double c1 = window_max(1.0);
  const double c2 = window_max(2.0);
  const double c8 = window_max(8.0);
  EXPECT_GE(c2, c1);
  EXPECT_GE(c8, c2);
}

TEST(RegimeOrder, WeightedMaxDominatesUnweightedUnderHotKeys) {
  // Zipf weights: the weighted maximum must weakly dominate the
  // unweighted one scaled by the minimum weight (sanity relation the
  // weighted observers must satisfy by construction).
  MixedParams p;
  p.n = 128;
  p.ball_ratio = 2.0;
  p.weights = "zipf";
  p.rounds = 2 * p.n;
  p.trials = 2;
  p.seed = 5;
  const MixedResult r = run_mixed(p);
  EXPECT_GE(r.window_max_weighted.mean(), r.window_max.mean());
}

}  // namespace
}  // namespace rbb
