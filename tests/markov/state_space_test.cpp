// Tests for the composition state-space enumeration.
#include "markov/state_space.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <stdexcept>

namespace rbb {
namespace {

TEST(StateSpace, ExpectedSizeMatchesBinomial) {
  // C(m+n-1, n-1) spot checks.
  EXPECT_EQ(StateSpace::expected_size(2, 2), 3u);    // C(3,1)
  EXPECT_EQ(StateSpace::expected_size(3, 3), 10u);   // C(5,2)
  EXPECT_EQ(StateSpace::expected_size(4, 4), 35u);   // C(7,3)
  EXPECT_EQ(StateSpace::expected_size(5, 5), 126u);  // C(9,4)
  EXPECT_EQ(StateSpace::expected_size(6, 6), 462u);  // C(11,5)
  EXPECT_EQ(StateSpace::expected_size(1, 10), 1u);
  EXPECT_EQ(StateSpace::expected_size(10, 0), 1u);
}

TEST(StateSpace, EnumerationCountMatchesFormula) {
  for (std::uint32_t n = 1; n <= 5; ++n) {
    for (std::uint32_t m = 0; m <= 5; ++m) {
      const StateSpace space(n, m);
      EXPECT_EQ(space.size(), StateSpace::expected_size(n, m))
          << "n=" << n << " m=" << m;
    }
  }
}

TEST(StateSpace, StatesAreDistinctSortedAndValid) {
  const StateSpace space(4, 4);
  std::set<LoadConfig> seen;
  for (std::size_t id = 0; id < space.size(); ++id) {
    const LoadConfig& q = space.config(id);
    EXPECT_EQ(q.size(), 4u);
    EXPECT_EQ(total_balls(q), 4u);
    EXPECT_TRUE(seen.insert(q).second) << "duplicate state";
    if (id > 0) {
      EXPECT_LT(space.config(id - 1), q) << "not sorted";
    }
  }
}

TEST(StateSpace, IndexOfRoundTripsEveryState) {
  const StateSpace space(5, 3);
  for (std::size_t id = 0; id < space.size(); ++id) {
    EXPECT_EQ(space.index_of(space.config(id)), id);
  }
}

TEST(StateSpace, IndexOfRejectsInvalidConfigs) {
  const StateSpace space(3, 3);
  EXPECT_THROW((void)space.index_of({1, 1}), std::invalid_argument);
  EXPECT_THROW((void)space.index_of({1, 1, 2}), std::invalid_argument);
}

TEST(StateSpace, TooLargeSpaceThrows) {
  // C(39, 19) ~ 6.9e10 exceeds the enumeration budget.
  EXPECT_THROW(StateSpace(20, 20), std::invalid_argument);
  // C(127, 63) does not even fit in 64 bits.
  EXPECT_THROW((void)StateSpace::expected_size(64, 64), std::overflow_error);
}

TEST(StateSpace, ZeroBinsThrows) {
  EXPECT_THROW((void)StateSpace::expected_size(0, 3), std::invalid_argument);
}

TEST(StateSpace, OrbitRepresentativeIsSortedDescending) {
  const StateSpace space(4, 4);
  for (std::size_t id = 0; id < space.size(); ++id) {
    const LoadConfig rep = space.orbit_representative(id);
    EXPECT_TRUE(std::is_sorted(rep.begin(), rep.end(), std::greater<>()));
    LoadConfig sorted_q = space.config(id);
    std::sort(sorted_q.begin(), sorted_q.end(), std::greater<>());
    EXPECT_EQ(rep, sorted_q);
  }
}

TEST(StateSpace, OrbitsPartitionTheSpace) {
  const StateSpace space(4, 4);
  const auto orbits = space.orbits();
  // Orbits of 4 balls in 4 bins = partitions of 4 into <= 4 parts: 5.
  EXPECT_EQ(orbits.size(), 5u);
  std::size_t covered = 0;
  std::set<std::size_t> seen;
  for (const auto& orbit : orbits) {
    covered += orbit.size();
    const LoadConfig rep = space.orbit_representative(orbit.front());
    for (const std::size_t id : orbit) {
      EXPECT_EQ(space.orbit_representative(id), rep);
      EXPECT_TRUE(seen.insert(id).second);
    }
  }
  EXPECT_EQ(covered, space.size());
}

TEST(StateSpace, OrbitSizesAreMultinomialCounts) {
  const StateSpace space(3, 3);
  // Partitions of 3 into <= 3 parts: (3,0,0) -> 3 states, (2,1,0) -> 6,
  // (1,1,1) -> 1.  Total 10.
  std::set<std::size_t> sizes;
  for (const auto& orbit : space.orbits()) sizes.insert(orbit.size());
  EXPECT_EQ(sizes, (std::set<std::size_t>{1, 3, 6}));
}

}  // namespace
}  // namespace rbb
