// E13 -- beta sensitivity.  Back-compat shim: the experiment now lives in the
// registry (src/runner/experiments/beta_sensitivity.cpp); this binary behaves like
// `rbb run beta_sensitivity` with table output, honoring RBB_BENCH_SCALE and
// RBB_CSV_DIR as it always did.
#include "runner/legacy.hpp"

int main(int argc, char** argv) {
  return rbb::runner::legacy_bench_main("beta_sensitivity", argc, argv);
}
