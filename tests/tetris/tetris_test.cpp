// Tests for the Tetris process: round semantics, first-empty tracking
// (Lemma 4 machinery), the negative-drift behaviour, and the D1 arrival-
// sampling ablation equivalence.
#include "tetris/tetris.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "support/bounds.hpp"

namespace rbb {
namespace {

TEST(Tetris, RejectsEmptyConfig) {
  EXPECT_THROW(TetrisProcess(LoadConfig{}, Rng(1)), std::invalid_argument);
}

TEST(Tetris, DefaultArrivalsAreThreeQuarters) {
  const TetrisProcess proc(LoadConfig(16, 1), Rng(1));
  EXPECT_EQ(proc.arrivals_per_round(), 12u);
  const TetrisProcess proc2(LoadConfig(10, 1), Rng(1));
  EXPECT_EQ(proc2.arrivals_per_round(), 7u);  // floor(30/4)
}

TEST(Tetris, BallAccountingPerRound) {
  // total(t+1) = total(t) - #nonempty(t) + arrivals.
  Rng rng(2);
  LoadConfig q = make_config(InitialConfig::kRandom, 32, 32, rng);
  TetrisProcess proc(std::move(q), rng);
  for (int t = 0; t < 100; ++t) {
    const std::uint64_t before = proc.total_balls();
    const std::uint32_t nonempty =
        proc.bin_count() - proc.empty_bins();
    const TetrisRoundStats s = proc.step();
    ASSERT_EQ(s.total_balls,
              before - nonempty + proc.arrivals_per_round());
    proc.check_invariants();
  }
}

TEST(Tetris, IncrementalStatsStayExact) {
  Rng rng(3);
  TetrisProcess proc(make_config(InitialConfig::kAllInOne, 24, 24, rng), rng);
  for (int t = 0; t < 200; ++t) {
    const TetrisRoundStats s = proc.step();
    ASSERT_EQ(s.max_load, max_load(proc.loads()));
    ASSERT_EQ(s.empty_bins, empty_bins(proc.loads()));
  }
}

TEST(Tetris, InitiallyEmptyBinsHaveFirstEmptyZero) {
  LoadConfig q{2, 0, 1, 0};
  const TetrisProcess proc(std::move(q), Rng(4));
  EXPECT_EQ(proc.first_empty_round(1), 0u);
  EXPECT_EQ(proc.first_empty_round(3), 0u);
  EXPECT_EQ(proc.first_empty_round(0), TetrisProcess::kNeverEmptied);
  EXPECT_FALSE(proc.all_emptied_once());
}

TEST(Tetris, FirstEmptyDetectedExactly) {
  // Deterministic check: replay the process and recompute first-empty
  // rounds from the load trajectories.
  Rng rng(5);
  TetrisProcess proc(make_config(InitialConfig::kGeometric, 16, 16, rng),
                     rng);
  std::vector<std::uint64_t> expected(16, TetrisProcess::kNeverEmptied);
  for (std::uint32_t u = 0; u < 16; ++u) {
    if (proc.loads()[u] == 0) expected[u] = 0;
  }
  for (std::uint64_t t = 1; t <= 300; ++t) {
    proc.step();
    for (std::uint32_t u = 0; u < 16; ++u) {
      if (proc.loads()[u] == 0 &&
          expected[u] == TetrisProcess::kNeverEmptied) {
        expected[u] = t;
      }
    }
  }
  for (std::uint32_t u = 0; u < 16; ++u) {
    EXPECT_EQ(proc.first_empty_round(u), expected[u]) << "bin " << u;
  }
}

TEST(Tetris, Lemma4DrainWithinFiveN) {
  // From all-in-one with n = 256, every bin should empty within 5n rounds
  // (the Lemma-4 bound; failure probability e^{-alpha n}).
  constexpr std::uint32_t n = 256;
  Rng rng(6);
  TetrisProcess proc(make_config(InitialConfig::kAllInOne, n, n, rng), rng);
  const std::uint64_t drained = proc.run_until_all_emptied(10 * n);
  ASSERT_NE(drained, TetrisProcess::kNeverEmptied);
  EXPECT_LE(drained, 5ull * n);
  EXPECT_TRUE(proc.all_emptied_once());
  EXPECT_EQ(proc.max_first_empty_round(), drained);
}

TEST(Tetris, NegativeDriftKeepsLoadsSmall) {
  // Lemma 6 at test scale: window max load stays O(log n) from a
  // legitimate start.
  constexpr std::uint32_t n = 512;
  Rng rng(7);
  TetrisProcess proc(make_config(InitialConfig::kOnePerBin, n, n, rng), rng);
  std::uint32_t wmax = 0;
  for (std::uint32_t t = 0; t < 20 * n; ++t) {
    wmax = std::max(wmax, proc.step().max_load);
  }
  EXPECT_LE(wmax, 6.0 * log2n(n));
}

TEST(Tetris, CustomArrivalRateRespected) {
  Rng rng(8);
  TetrisProcess proc(LoadConfig(16, 1), rng, 4);
  EXPECT_EQ(proc.arrivals_per_round(), 4u);
  const std::uint64_t before = proc.total_balls();
  proc.step();
  // 16 non-empty bins discard 16 balls, 4 arrive.
  EXPECT_EQ(proc.total_balls(), before - 16 + 4);
}

TEST(Tetris, SupercriticalArrivalsGrowMass) {
  // arrivals > n: total mass must grow every round -- the drift ablation.
  Rng rng(9);
  constexpr std::uint32_t n = 64;
  TetrisProcess proc(LoadConfig(n, 1), rng, 2 * n);
  const std::uint64_t before = proc.total_balls();
  proc.run(50);
  EXPECT_GT(proc.total_balls(), before);
}

TEST(Tetris, SplitSamplingStatisticallyEquivalent) {
  // D1 ablation: ball-by-ball vs multinomial splitting give the same
  // mean empty fraction in equilibrium.
  constexpr std::uint32_t n = 256;
  auto mean_empty = [](ArrivalSampling sampling) {
    Rng rng(10);
    TetrisProcess proc(LoadConfig(n, 1), rng, 0, sampling);
    proc.run(200);  // burn-in
    double sum = 0.0;
    constexpr int kWindow = 800;
    for (int t = 0; t < kWindow; ++t) sum += proc.step().empty_bins;
    return sum / kWindow / n;
  };
  const double throw_mean = mean_empty(ArrivalSampling::kBallByBall);
  const double split_mean = mean_empty(ArrivalSampling::kSplit);
  EXPECT_NEAR(throw_mean, split_mean, 0.03);
  // Both must exceed the Lemma-1 floor of 1/4 comfortably in equilibrium.
  EXPECT_GT(throw_mean, 0.25);
}

TEST(Tetris, DeterministicForSeed) {
  auto run = [] {
    Rng rng(11);
    TetrisProcess proc(LoadConfig(32, 1), rng);
    proc.run(100);
    return proc.loads();
  };
  EXPECT_EQ(run(), run());
}

// Property sweep: Lemma 4 at several sizes and starting profiles.
class TetrisDrainSweep
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, InitialConfig>> {
};

TEST_P(TetrisDrainSweep, AllBinsEmptyWithinFiveN) {
  const auto [n, start] = GetParam();
  Rng rng(12 + n);
  TetrisProcess proc(make_config(start, n, n, rng), rng);
  const std::uint64_t drained = proc.run_until_all_emptied(10ull * n);
  ASSERT_NE(drained, TetrisProcess::kNeverEmptied)
      << "n=" << n << " start=" << to_string(start);
  EXPECT_LE(drained, 5ull * n);
}

INSTANTIATE_TEST_SUITE_P(
    StartsAndSizes, TetrisDrainSweep,
    ::testing::Combine(::testing::Values(64u, 256u, 1024u),
                       ::testing::Values(InitialConfig::kAllInOne,
                                         InitialConfig::kHalfLoaded,
                                         InitialConfig::kGeometric)));

}  // namespace
}  // namespace rbb
