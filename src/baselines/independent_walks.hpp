// Independent parallel random walks -- the "no queueing" comparator.
//
// The repeated balls-into-bins process is exactly n parallel random walks
// *coupled* by the one-departure-per-bin constraint (paper Sect. 1.1).
// Removing the constraint yields n independent walks: every ball moves
// every round regardless of congestion.  On the clique the load vector is
// then a fresh n-ball one-shot occupancy each round, so the window maximum
// load is Theta(log n / log log n) -- the floor against which the paper's
// O(log n) upper bound for the constrained process is judged.  Also
// provides the single-walker cover time (the O(n log n) baseline inside
// Corollary 1).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "graph/graph.hpp"
#include "support/rng.hpp"

namespace rbb {

/// n balls performing independent, simultaneous random walks.
class IndependentWalksProcess {
 public:
  /// `start_bin[i]` is the initial bin of ball i; graph == nullptr means
  /// the complete graph (uniform destination over all bins).
  IndependentWalksProcess(std::uint32_t bins,
                          std::vector<std::uint32_t> start_bin,
                          const Graph* graph, Rng rng);

  /// One round: every ball moves.
  void step();
  void run(std::uint64_t rounds);

  [[nodiscard]] std::uint32_t bin_count() const noexcept { return bins_; }
  [[nodiscard]] std::uint32_t ball_count() const noexcept {
    return static_cast<std::uint32_t>(ball_bin_.size());
  }
  [[nodiscard]] std::uint64_t round() const noexcept { return round_; }
  [[nodiscard]] const std::vector<std::uint32_t>& loads() const noexcept {
    return loads_;
  }
  [[nodiscard]] std::uint32_t max_load() const;
  [[nodiscard]] std::uint32_t empty_bins() const;

  /// Adversarial reassignment (paper, Sect. 4.1): ball i moves to
  /// `new_bin[i]`.  Counts as a faulty event, not a process round.
  void reassign(const std::vector<std::uint32_t>& new_bin);

  /// Testing hook: recomputes the load vector from ball positions and
  /// checks it against the incremental one; throws std::logic_error on
  /// drift.
  void check_invariants() const;

 private:
  std::uint32_t bins_;
  const Graph* graph_;
  Rng rng_;
  std::vector<std::uint32_t> ball_bin_;
  std::vector<std::uint32_t> loads_;
  std::uint64_t round_ = 0;
};

/// Cover time of a single random walk started at bin 0: first round by
/// which all bins have been visited, or nullopt if `cap` rounds elapse.
/// graph == nullptr means the complete graph (u.a.r. jumps: coupon
/// collector, expectation n * H_n).
[[nodiscard]] std::optional<std::uint64_t> single_walk_cover_time(
    std::uint32_t bins, const Graph* graph, std::uint64_t cap, Rng& rng);

}  // namespace rbb
