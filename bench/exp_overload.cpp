// E13 -- Sect. 5 open question: does self-stabilization survive m > n
// balls (up to m = O(n log n))?
//
// Table: per m/n ratio, the window max load, its ratio to (m/n + log2 n)
// (the natural guess for the overloaded regime), and the minimum empty
// fraction (which drops below 1/4 once m/n is large -- the Lemma-1
// argument visibly breaks while loads may stay moderate).
#include "analysis/experiments.hpp"
#include "bench/bench_common.hpp"
#include "support/bounds.hpp"

int main(int argc, char** argv) {
  using namespace rbb;
  Cli cli = bench::make_cli(
      "E13: overloaded regime m > n (Sect. 5 open question)");
  cli.add_u64("n", 0, "bins (0 = scale default)");
  if (!cli.parse(argc, argv)) return 0;

  const BenchScale scale = bench_scale();
  const std::uint32_t trials = bench::trials_for(cli, scale, 2, 4, 8);
  const std::uint32_t n =
      cli.u64("n") != 0 ? static_cast<std::uint32_t>(cli.u64("n"))
                        : by_scale<std::uint32_t>(scale, 512, 2048, 8192);
  const std::uint64_t wf = by_scale<std::uint64_t>(scale, 5, 15, 40);

  const double logn = log2n(n);
  Table table({"m / n", "m", "window max (mean)", "max / (m/n + log2 n)",
               "min empty frac", "mean final max"});
  for (const double ratio : {0.5, 1.0, 2.0, 4.0, logn}) {
    const auto m = static_cast<std::uint64_t>(
        ratio * static_cast<double>(n));
    StabilityParams p;
    p.n = n;
    p.balls = m;
    p.rounds = wf * n;
    p.trials = trials;
    p.seed = cli.u64("seed");
    const StabilityResult r = run_stability(p);
    table.row()
        .cell(ratio, 2)
        .cell(m)
        .cell(r.window_max.mean(), 2)
        .cell(r.window_max.mean() / (ratio + logn), 3)
        .cell(r.min_empty_fraction.min(), 3)
        .cell(r.final_max.mean(), 2);
  }
  bench::emit(table, "E13_overload",
              "m > n: loads grow additively with m/n (open question)",
              scale);
  return 0;
}
