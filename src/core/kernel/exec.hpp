// Execution policies of the process core (DESIGN.md Sect. 5).
//
// A round kernel instantiates the core template with one of two
// execution policies:
//
//   * SequentialExecution -- the in-place single-thread walk.  Carries
//     no state; every phase the core issues runs inline, so the
//     instantiation compiles down to exactly the hand-written
//     sequential loop (pinned by the engine parity tests).
//   * ShardedExecution -- the two-phase striped throw/commit scatter:
//     a ShardPlan partitions the bins, a StripeExecutor dispatches the
//     per-stripe phase bodies onto a thread pool.  Requires a
//     schedule-free RNG stream policy (stream.hpp); the core
//     static_asserts the combination.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <memory>
#include <string_view>

#include "core/kernel/shard.hpp"
#include "support/thread_pool.hpp"

namespace rbb::kernel {

/// Runtime switch for the pipelined round loop (double-buffered
/// throw/commit overlap, core/kernel/pipeline.hpp).  Defaults on;
/// RBB_PIPELINE=0 pins the barriered per-round path (CI runs the parity
/// suites both ways).  Read once -- flipping the variable mid-process
/// has no effect, which keeps every run's execution mode well-defined.
[[nodiscard]] inline bool pipeline_enabled() noexcept {
  static const bool enabled = [] {
    const char* env = std::getenv("RBB_PIPELINE");
    return env == nullptr || std::string_view(env) != "0";
  }();
  return enabled;
}

/// Execution knobs shared by the sharded instantiations (ignored by
/// SequentialExecution).
struct ExecOptions {
  /// 0 = run on the process-wide ThreadPool::global() (recommended: the
  /// nesting rule in thread_pool.hpp then degrades an inner sharded
  /// round to sequential under a trial-level fan-out instead of
  /// oversubscribing).  1 = strictly in-thread, no pool.  k > 1 =
  /// exactly k runnable threads via a private pool (k-1 workers + the
  /// submitter; see StripeExecutor) -- benchmarks only, and only
  /// meaningful at the top of the nesting hierarchy.
  unsigned threads = 0;
  /// Bins per shard; 0 = kDefaultShardSize.  Rounded up to a multiple
  /// of 16 bins (one cache line of loads).
  std::uint32_t shard_size = 0;
};

/// Runs phase bodies over [0, stripe_count) per the `threads` knob:
///   0  -- the process-wide ThreadPool::global(),
///   1  -- strictly inline on the calling thread (no pool),
///   k  -- a private pool sized k-1 workers: the submitting thread
///         drains its own batches (ThreadPool::run_batch), so k-1
///         workers + the submitter = exactly k runnable threads.  This
///         keeps the `threads` label of perf tables honest and the
///         k = hardware row from oversubscribing by one.
/// Note a private pool only helps at the TOP of the nesting hierarchy:
/// inside another pool's task every submission runs inline
/// (thread_pool.hpp nesting rule), so processes driven under
/// for_each_trial should use threads <= 1 and let the trial sweep own
/// the cores.
class StripeExecutor {
 public:
  explicit StripeExecutor(unsigned threads) {
    if (threads == 0) {
      pool_ = &ThreadPool::global();
    } else if (threads > 1) {
      owned_pool_ = std::make_unique<ThreadPool>(threads - 1);
      pool_ = owned_pool_.get();
    }
  }

  template <typename Fn>
  void for_stripes(std::uint32_t stripe_count, Fn&& fn) {
    if (pool_ == nullptr || stripe_count == 1) {
      for (std::uint32_t g = 0; g < stripe_count; ++g) fn(g);
      return;
    }
    pool_->for_each(stripe_count, [&fn](std::uint64_t g) {
      fn(static_cast<std::uint32_t>(g));
    });
  }

  /// Widest concurrent team the executor can host: workers + the
  /// submitting thread, or 1 when execution is inline.
  [[nodiscard]] unsigned team_width() const noexcept {
    return pool_ == nullptr ? 1u : pool_->thread_count() + 1;
  }

  /// Runs fn(w) for w in [0, width) as a resident team (every task on
  /// its own thread for the whole call -- ThreadPool::run_team).
  /// Returns false without running anything when no pool is attached or
  /// the pool cannot guarantee team concurrency; the caller falls back
  /// to barriered for_stripes rounds.
  template <typename Fn>
  bool run_team(std::uint32_t width, Fn&& fn) {
    if (pool_ == nullptr) return false;
    return pool_->run_team(width, [&fn](std::uint64_t w) {
      fn(static_cast<std::uint32_t>(w));
    });
  }

 private:
  ThreadPool* pool_ = nullptr;  // nullptr = inline execution
  std::unique_ptr<ThreadPool> owned_pool_;
};

/// In-place sequential walk; no partition, no pool, no state.
class SequentialExecution {
 public:
  static constexpr bool kSharded = false;
  SequentialExecution(std::uint32_t /*n*/, ExecOptions /*options*/) {}
};

/// Two-phase striped scatter across a thread pool.
class ShardedExecution {
 public:
  static constexpr bool kSharded = true;
  ShardedExecution(std::uint32_t n, ExecOptions options)
      : plan_(n, options.shard_size), stripes_(options.threads) {}

  [[nodiscard]] const ShardPlan& plan() const noexcept { return plan_; }
  [[nodiscard]] StripeExecutor& stripes() noexcept { return stripes_; }

 private:
  ShardPlan plan_;
  StripeExecutor stripes_;
};

}  // namespace rbb::kernel
