// Tests for the graph substrate: construction invariants, generator
// properties (degree sequences, connectivity, handshake lemma) and
// neighbor-sampling uniformity.
#include "graph/graph.hpp"

#include <gtest/gtest.h>

#include <map>
#include <numeric>
#include <set>
#include <string>

namespace rbb {
namespace {

TEST(Graph, RejectsInvalidEdges) {
  EXPECT_THROW(Graph(0, {}), std::invalid_argument);
  EXPECT_THROW(Graph(3, {{0, 3}}), std::invalid_argument);  // out of range
  EXPECT_THROW(Graph(3, {{1, 1}}), std::invalid_argument);  // self-loop
  EXPECT_THROW(Graph(3, {{0, 1}, {1, 0}}), std::invalid_argument);  // dup
}

TEST(Graph, TriangleBasics) {
  const Graph g(3, {{0, 1}, {1, 2}, {0, 2}});
  EXPECT_EQ(g.node_count(), 3u);
  EXPECT_EQ(g.edge_count(), 3u);
  for (std::uint32_t u = 0; u < 3; ++u) EXPECT_EQ(g.degree(u), 2u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(0, 0));
  EXPECT_TRUE(g.is_regular());
  EXPECT_TRUE(g.is_connected());
  EXPECT_EQ(g.diameter(), 1u);
}

TEST(Graph, NeighborsSorted) {
  const Graph g(5, {{2, 4}, {2, 0}, {2, 3}});
  const auto nbrs = g.neighbors(2);
  ASSERT_EQ(nbrs.size(), 3u);
  EXPECT_EQ(nbrs[0], 0u);
  EXPECT_EQ(nbrs[1], 3u);
  EXPECT_EQ(nbrs[2], 4u);
}

TEST(Graph, DisconnectedDetected) {
  const Graph g(4, {{0, 1}, {2, 3}});
  EXPECT_FALSE(g.is_connected());
  EXPECT_THROW((void)g.diameter(), std::logic_error);
}

TEST(Graph, SampleNeighborIsUniform) {
  const Graph g(4, {{0, 1}, {0, 2}, {0, 3}});
  Rng rng(7);
  std::map<std::uint32_t, int> counts;
  constexpr int kDraws = 30000;
  for (int i = 0; i < kDraws; ++i) ++counts[g.sample_neighbor(0, rng)];
  ASSERT_EQ(counts.size(), 3u);
  for (const auto& [v, c] : counts) {
    EXPECT_NEAR(static_cast<double>(c) / kDraws, 1.0 / 3.0, 0.02) << v;
  }
}

TEST(Generators, Cycle) {
  const Graph g = make_cycle(8);
  EXPECT_EQ(g.node_count(), 8u);
  EXPECT_EQ(g.edge_count(), 8u);
  EXPECT_TRUE(g.is_regular());
  EXPECT_EQ(g.max_degree(), 2u);
  EXPECT_TRUE(g.is_connected());
  EXPECT_EQ(g.diameter(), 4u);
  EXPECT_THROW((void)make_cycle(2), std::invalid_argument);
}

TEST(Generators, Path) {
  const Graph g = make_path(5);
  EXPECT_EQ(g.edge_count(), 4u);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(2), 2u);
  EXPECT_EQ(g.diameter(), 4u);
  EXPECT_THROW((void)make_path(1), std::invalid_argument);
}

TEST(Generators, Complete) {
  const Graph g = make_complete(6);
  EXPECT_EQ(g.edge_count(), 15u);
  EXPECT_TRUE(g.is_regular());
  EXPECT_EQ(g.max_degree(), 5u);
  EXPECT_EQ(g.diameter(), 1u);
}

TEST(Generators, Torus) {
  const Graph g = make_torus(4, 5);
  EXPECT_EQ(g.node_count(), 20u);
  EXPECT_TRUE(g.is_regular());
  EXPECT_EQ(g.max_degree(), 4u);
  EXPECT_TRUE(g.is_connected());
  // Handshake lemma: 4-regular on 20 nodes -> 40 edges.
  EXPECT_EQ(g.edge_count(), 40u);
  EXPECT_THROW((void)make_torus(2, 5), std::invalid_argument);
}

TEST(Generators, Hypercube) {
  const Graph g = make_hypercube(4);
  EXPECT_EQ(g.node_count(), 16u);
  EXPECT_TRUE(g.is_regular());
  EXPECT_EQ(g.max_degree(), 4u);
  EXPECT_TRUE(g.is_connected());
  EXPECT_EQ(g.diameter(), 4u);
  // Neighbors differ in exactly one bit.
  for (std::uint32_t u = 0; u < 16; ++u) {
    for (const std::uint32_t v : g.neighbors(u)) {
      EXPECT_EQ(__builtin_popcount(u ^ v), 1) << u << "-" << v;
    }
  }
}

TEST(Generators, Star) {
  const Graph g = make_star(7);
  EXPECT_EQ(g.degree(0), 6u);
  for (std::uint32_t u = 1; u < 7; ++u) EXPECT_EQ(g.degree(u), 1u);
  EXPECT_EQ(g.diameter(), 2u);
}

TEST(Generators, RandomRegularIsSimpleAndRegular) {
  Rng rng(11);
  for (const std::uint32_t d : {2u, 4u, 8u}) {
    const Graph g = make_random_regular(64, d, rng);
    EXPECT_EQ(g.node_count(), 64u);
    EXPECT_TRUE(g.is_regular()) << "d=" << d;
    EXPECT_EQ(g.max_degree(), d);
    EXPECT_EQ(g.edge_count(), 64ull * d / 2);
  }
}

TEST(Generators, RandomRegularRejectsBadParams) {
  Rng rng(12);
  EXPECT_THROW((void)make_random_regular(10, 0, rng), std::invalid_argument);
  EXPECT_THROW((void)make_random_regular(10, 10, rng), std::invalid_argument);
  EXPECT_THROW((void)make_random_regular(5, 3, rng),
               std::invalid_argument);  // odd n*d
}

TEST(Generators, RandomRegularUsuallyConnected) {
  // A random 4-regular graph is connected with probability 1 - o(1).
  Rng rng(13);
  int connected = 0;
  for (int i = 0; i < 10; ++i) {
    if (make_random_regular(48, 4, rng).is_connected()) ++connected;
  }
  EXPECT_GE(connected, 9);
}

TEST(Generators, GnpEdgeCountMatchesExpectation) {
  Rng rng(14);
  constexpr std::uint32_t n = 200;
  constexpr double p = 0.1;
  double total = 0.0;
  constexpr int kTrials = 40;
  for (int i = 0; i < kTrials; ++i) {
    total += static_cast<double>(make_gnp(n, p, rng).edge_count());
  }
  const double expected = p * n * (n - 1) / 2.0;
  EXPECT_NEAR(total / kTrials, expected, 0.05 * expected);
}

TEST(Generators, GnpDegenerateP) {
  Rng rng(15);
  EXPECT_EQ(make_gnp(10, 0.0, rng).edge_count(), 0u);
  EXPECT_EQ(make_gnp(10, 1.0, rng).edge_count(), 45u);
}

TEST(Generators, GnpEdgesAreValid) {
  Rng rng(16);
  const Graph g = make_gnp(50, 0.3, rng);  // Graph ctor rejects dups/loops
  EXPECT_GT(g.edge_count(), 0u);
  EXPECT_LE(g.max_degree(), 49u);
}

TEST(Generators, Lollipop) {
  const Graph g = make_lollipop(12);
  EXPECT_EQ(g.node_count(), 12u);
  EXPECT_TRUE(g.is_connected());
  // Clique part: nodes 0..5 pairwise adjacent.
  for (std::uint32_t u = 0; u < 6; ++u) {
    for (std::uint32_t v = u + 1; v < 6; ++v) {
      EXPECT_TRUE(g.has_edge(u, v)) << u << "," << v;
    }
  }
  // Tail: path of degree-2 nodes ending in a degree-1 node.
  EXPECT_EQ(g.degree(11), 1u);
  EXPECT_EQ(g.degree(8), 2u);
  EXPECT_THROW((void)make_lollipop(3), std::invalid_argument);
}

TEST(Generators, Barbell) {
  const Graph g = make_barbell(12);
  EXPECT_EQ(g.node_count(), 12u);
  EXPECT_TRUE(g.is_connected());
  // Two cliques of 4-5 nodes: both endpoints have clique-degree.
  EXPECT_GE(g.degree(0), 3u);
  EXPECT_GE(g.degree(11), 3u);
  EXPECT_THROW((void)make_barbell(5), std::invalid_argument);
}

TEST(Generators, CompleteBipartite) {
  const Graph g = make_complete_bipartite(3, 5);
  EXPECT_EQ(g.node_count(), 8u);
  EXPECT_EQ(g.edge_count(), 15u);
  for (std::uint32_t u = 0; u < 3; ++u) EXPECT_EQ(g.degree(u), 5u);
  for (std::uint32_t v = 3; v < 8; ++v) EXPECT_EQ(g.degree(v), 3u);
  // No intra-side edges.
  EXPECT_FALSE(g.has_edge(0, 1));
  EXPECT_FALSE(g.has_edge(3, 4));
  EXPECT_EQ(g.diameter(), 2u);
  EXPECT_THROW((void)make_complete_bipartite(0, 3), std::invalid_argument);
}

TEST(Generators, BinaryTree) {
  const Graph g = make_binary_tree(15);  // perfect tree of depth 3
  EXPECT_EQ(g.edge_count(), 14u);
  EXPECT_TRUE(g.is_connected());
  EXPECT_EQ(g.degree(0), 2u);   // root
  EXPECT_EQ(g.degree(1), 3u);   // internal
  EXPECT_EQ(g.degree(14), 1u);  // leaf
  EXPECT_EQ(g.diameter(), 6u);  // leaf -> root -> other leaf
  EXPECT_THROW((void)make_binary_tree(1), std::invalid_argument);
}

TEST(NamedGraph, LookupWorks) {
  Rng rng(17);
  EXPECT_EQ(make_named_graph("cycle", 10, rng).edge_count(), 10u);
  EXPECT_EQ(make_named_graph("hypercube", 16, rng).max_degree(), 4u);
  EXPECT_EQ(make_named_graph("torus", 16, rng).max_degree(), 4u);
  EXPECT_TRUE(make_named_graph("regular6", 32, rng).is_regular());
  EXPECT_EQ(make_named_graph("star", 5, rng).degree(0), 4u);
  EXPECT_THROW((void)make_named_graph("nope", 8, rng), std::invalid_argument);
  EXPECT_THROW((void)make_named_graph("hypercube", 10, rng),
               std::invalid_argument);
}

// Property sweep over generators: every generated graph satisfies the
// handshake lemma and has consistent CSR structure.
class GeneratorProperty : public ::testing::TestWithParam<std::string> {};

TEST_P(GeneratorProperty, HandshakeAndConsistency) {
  Rng rng(19);
  const Graph g = make_named_graph(GetParam(), 64, rng);
  std::uint64_t degree_sum = 0;
  for (std::uint32_t u = 0; u < g.node_count(); ++u) {
    degree_sum += g.degree(u);
    for (const std::uint32_t v : g.neighbors(u)) {
      ASSERT_LT(v, g.node_count());
      ASSERT_NE(v, u);
      // Symmetry: v lists u.
      EXPECT_TRUE(g.has_edge(v, u));
    }
  }
  EXPECT_EQ(degree_sum, 2 * g.edge_count());
}

INSTANTIATE_TEST_SUITE_P(AllGenerators, GeneratorProperty,
                         ::testing::Values("cycle", "path", "complete",
                                           "star", "torus", "hypercube",
                                           "regular4", "regular8",
                                           "lollipop", "barbell",
                                           "bipartite", "tree"));

}  // namespace
}  // namespace rbb
